package nn

import (
	"bytes"
	"math"
	"testing"

	"leapme/internal/mathx"
)

// inferTopologies are the network shapes the kernel suites sweep:
// the paper's serving topology plus degenerate and odd-width shapes
// that stress the ping-pong scratch and the batch strides.
var inferTopologies = []Config{
	{InDim: 101, Hidden: []int{128, 64}, Out: 2, Activation: ActReLU, Seed: 1},
	{InDim: 7, Hidden: []int{5}, Out: 2, Activation: ActReLU, Seed: 2},
	{InDim: 3, Hidden: nil, Out: 2, Activation: ActReLU, Seed: 3},
	{InDim: 13, Hidden: []int{17, 3, 9}, Out: 4, Activation: ActTanh, Seed: 4},
	{InDim: 32, Hidden: []int{64}, Out: 2, Activation: ActSigmoid, Seed: 5},
}

// randInputs returns n seeded random input vectors for cfg, with values
// on the scale standardised pair features actually take.
func randInputs(cfg Config, n int, seed int64) [][]float64 {
	rng := mathx.NewRand(seed)
	xs := make([][]float64, n)
	for i := range xs {
		x := make([]float64, cfg.InDim)
		for j := range x {
			x[j] = rng.NormFloat64() * 2
		}
		xs[i] = x
	}
	return xs
}

// TestKernelBitIdentity is the exact-equivalence gate for the default
// serving path: for every topology and input, the flat kernel's outputs
// must match Network.Forward byte for byte (compared through
// math.Float64bits, not a tolerance). If this fails, the serving layer's
// bit-reproducibility guarantee is broken — fix the kernel, never widen
// this to a tolerance.
func TestKernelBitIdentity(t *testing.T) {
	for _, cfg := range inferTopologies {
		net, err := New(cfg)
		if err != nil {
			t.Fatalf("New(%+v): %v", cfg, err)
		}
		k := NewKernel(net)
		if k.InDim() != cfg.InDim || k.OutDim() != cfg.Out {
			t.Fatalf("kernel dims %d→%d, want %d→%d", k.InDim(), k.OutDim(), cfg.InDim, cfg.Out)
		}
		scratch := make([]float64, k.ScratchLen())
		dst := make([]float64, k.OutDim())
		for _, x := range randInputs(cfg, 50, cfg.Seed+100) {
			want, err := net.Forward(x)
			if err != nil {
				t.Fatalf("Forward: %v", err)
			}
			k.Forward(dst, x, scratch)
			for i := range want {
				if math.Float64bits(dst[i]) != math.Float64bits(want[i]) {
					t.Fatalf("cfg %+v: kernel output %d = %x, want %x (values %v vs %v)",
						cfg, i, math.Float64bits(dst[i]), math.Float64bits(want[i]), dst[i], want[i])
				}
			}
			if got, want := k.PositiveScore(x, scratch), dst[1]; math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("cfg %+v: PositiveScore %v, want %v", cfg, got, want)
			}
		}
	}
}

// TestKernelBatchDeterminism proves batch-major execution changes
// nothing: ForwardBatch over any batch size is bit-identical to one
// Forward per input. The name keeps it inside `make test-determinism`,
// which re-runs it under GOMAXPROCS=1 and 4.
func TestKernelBatchDeterminism(t *testing.T) {
	for _, cfg := range inferTopologies {
		net, err := New(cfg)
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		k := NewKernel(net)
		inputs := randInputs(cfg, 33, cfg.Seed+200)
		single := make([]float64, len(inputs)*k.OutDim())
		scratch := make([]float64, k.ScratchLen())
		for i, x := range inputs {
			k.Forward(single[i*k.OutDim():(i+1)*k.OutDim()], x, scratch)
		}
		for _, n := range []int{1, 2, 7, 32, 33} {
			xs := make([]float64, 0, n*k.InDim())
			for _, x := range inputs[:n] {
				xs = append(xs, x...)
			}
			probs := make([]float64, n*k.OutDim())
			bscratch := make([]float64, k.BatchScratchLen(n))
			k.ForwardBatch(probs, xs, n, bscratch)
			for i := 0; i < n*k.OutDim(); i++ {
				if math.Float64bits(probs[i]) != math.Float64bits(single[i]) {
					t.Fatalf("cfg %+v batch %d: prob %d = %v, want %v", cfg, n, i, probs[i], single[i])
				}
			}
		}
	}
}

// TestKernelZeroAllocs pins the inference kernel at zero heap
// allocations per call — the hot-path contract the serving arenas build
// on. Wired into `go test ./...`, so a regression fails tier-1, not
// just a bench.
func TestKernelZeroAllocs(t *testing.T) {
	cfg := inferTopologies[0]
	net, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	k := NewKernel(net)
	x := randInputs(cfg, 1, 9)[0]
	scratch := make([]float64, k.ScratchLen())
	dst := make([]float64, k.OutDim())
	if n := testing.AllocsPerRun(100, func() { k.Forward(dst, x, scratch) }); n != 0 {
		t.Errorf("Kernel.Forward allocates %v times per call, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() { _ = k.PositiveScore(x, scratch) }); n != 0 {
		t.Errorf("Kernel.PositiveScore allocates %v times per call, want 0", n)
	}
	const batch = 32
	xs := make([]float64, batch*k.InDim())
	for i := range xs {
		xs[i] = x[i%len(x)]
	}
	probs := make([]float64, batch*k.OutDim())
	bscratch := make([]float64, k.BatchScratchLen(batch))
	if n := testing.AllocsPerRun(100, func() { k.ForwardBatch(probs, xs, batch, bscratch) }); n != 0 {
		t.Errorf("Kernel.ForwardBatch allocates %v times per call, want 0", n)
	}

	q := NewQuantKernel(net)
	qscratch := make([]float32, q.BatchScratchLen(batch))
	if n := testing.AllocsPerRun(100, func() { q.Forward(dst, x, qscratch) }); n != 0 {
		t.Errorf("QuantKernel.Forward allocates %v times per call, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() { _ = q.PositiveScore(x, qscratch) }); n != 0 {
		t.Errorf("QuantKernel.PositiveScore allocates %v times per call, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() { q.ForwardBatch(probs, xs, batch, qscratch) }); n != 0 {
		t.Errorf("QuantKernel.ForwardBatch allocates %v times per call, want 0", n)
	}
}

// quantTol is the documented equivalence tolerance for the int8 path:
// per-row symmetric quantisation bounds each weight's relative error by
// 1/254, and for the paper's topology the resulting softmax probability
// shift stays well under this bound on random networks and trained
// models alike (the core suite re-checks it on a real trained model).
const quantTol = 0.05

// TestQuantKernelEquivalence checks the int8 path against the float64
// reference over seeded random networks: probabilities within quantTol
// (via mathx.VecAlmostEqual), batch path bit-identical to the quant
// single path, and determinism of quantisation itself.
func TestQuantKernelEquivalence(t *testing.T) {
	for _, cfg := range inferTopologies {
		net, err := New(cfg)
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		k := NewKernel(net)
		q := NewQuantKernel(net)
		if q.InDim() != k.InDim() || q.OutDim() != k.OutDim() {
			t.Fatalf("quant dims %d→%d, want %d→%d", q.InDim(), q.OutDim(), k.InDim(), k.OutDim())
		}
		scratch := make([]float64, k.ScratchLen())
		qscratch := make([]float32, q.ScratchLen())
		ref := make([]float64, k.OutDim())
		got := make([]float64, q.OutDim())
		for _, x := range randInputs(cfg, 50, cfg.Seed+300) {
			k.Forward(ref, x, scratch)
			q.Forward(got, x, qscratch)
			if !mathx.VecAlmostEqual(got, ref, quantTol) {
				t.Fatalf("cfg %+v: quant probs %v diverge from reference %v beyond %v", cfg, got, ref, quantTol)
			}
			if p := q.PositiveScore(x, qscratch); !mathx.AlmostEqual(p, got[1], 1e-15) {
				t.Fatalf("cfg %+v: quant PositiveScore %v vs Forward[1] %v", cfg, p, got[1])
			}
		}
		// Batch vs single: the quant batch path must agree bit-for-bit
		// with the quant single path (same reassociated dot per pair).
		inputs := randInputs(cfg, 9, cfg.Seed+400)
		n := len(inputs)
		xs := make([]float64, 0, n*q.InDim())
		for _, x := range inputs {
			xs = append(xs, x...)
		}
		probs := make([]float64, n*q.OutDim())
		q.ForwardBatch(probs, xs, n, make([]float32, q.BatchScratchLen(n)))
		for i, x := range inputs {
			q.Forward(got, x, qscratch)
			for j := range got {
				if math.Float64bits(probs[i*q.OutDim()+j]) != math.Float64bits(got[j]) {
					t.Fatalf("cfg %+v: quant batch pair %d diverges from single", cfg, i)
				}
			}
		}
	}
}

// TestQuantKernelRoundTrip proves serialisation is lossless: a reloaded
// quant kernel produces bit-identical outputs, and quantising the same
// network twice yields byte-identical bytes (deterministic
// quantisation).
func TestQuantKernelRoundTrip(t *testing.T) {
	cfg := inferTopologies[0]
	net, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	q := NewQuantKernel(net)
	var buf bytes.Buffer
	if _, err := q.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	var buf2 bytes.Buffer
	if _, err := NewQuantKernel(net).WriteTo(&buf2); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Error("quantising the same network twice produced different bytes")
	}
	q2, err := ReadQuantKernel(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadQuantKernel: %v", err)
	}
	scratch := make([]float32, q.ScratchLen())
	got := make([]float64, q.OutDim())
	want := make([]float64, q.OutDim())
	for _, x := range randInputs(cfg, 20, 77) {
		q.Forward(want, x, scratch)
		q2.Forward(got, x, scratch)
		for i := range got {
			if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
				t.Fatalf("reloaded quant kernel diverges: %v vs %v", got, want)
			}
		}
	}
}

// TestReadQuantKernelRejectsCorruption walks structural corruptions
// through ReadQuantKernel; every one must be a load error.
func TestReadQuantKernelRejectsCorruption(t *testing.T) {
	net, err := New(inferTopologies[1])
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	var buf bytes.Buffer
	if _, err := NewQuantKernel(net).WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	good := buf.Bytes()

	if _, err := ReadQuantKernel(bytes.NewReader(good[:len(good)-3])); err == nil {
		t.Error("truncated quant kernel accepted")
	}
	if _, err := ReadQuantKernel(bytes.NewReader(good[:4])); err == nil {
		t.Error("truncated magic accepted")
	}
	bad := append([]byte(nil), good...)
	bad[0] ^= 0xff
	if _, err := ReadQuantKernel(bytes.NewReader(bad)); err == nil {
		t.Error("bad magic accepted")
	}
	bad = append([]byte(nil), good...)
	bad[len(quantMagic)] = 0xff // implausible layer count
	if _, err := ReadQuantKernel(bytes.NewReader(bad)); err == nil {
		t.Error("implausible layer count accepted")
	}
	bad = append([]byte(nil), good...)
	bad[len(quantMagic)+4] = 0 // first layer rows = 0
	if _, err := ReadQuantKernel(bytes.NewReader(bad)); err == nil {
		t.Error("zero-row layer accepted")
	}
	bad = append([]byte(nil), good...)
	bad[len(quantMagic)+12] = 0xee // first layer activation
	if _, err := ReadQuantKernel(bytes.NewReader(bad)); err == nil {
		t.Error("unknown activation accepted")
	}
}
