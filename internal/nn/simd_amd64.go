//go:build amd64

package nn

// The AVX kernels live in simd_amd64.s. They use only VMULPD/VADDPD/
// VSUBPD/VDIVPD/VSQRTPD (plus memory-operand VBROADCASTSD), all of
// which are plain AVX and correctly rounded per IEEE 754 — no FMA, no
// horizontal reductions — so each lane reproduces the generic Go
// chain bit for bit. hasAVXAsm checks CPUID for OSXSAVE+AVX and XCR0
// for OS-enabled YMM state before any of them is dispatched.

// hasAVXAsm reports whether the CPU and OS support AVX (CPUID leaf 1
// ECX bits 27/28 plus XCR0 XMM|YMM state).
func hasAVXAsm() bool

//go:noescape
func fwdrow8AVX(x, w *float64, cols int, acc *float64)

//go:noescape
func fwd2row8AVX(x, w *float64, cols int, acc *float64)

//go:noescape
func bwdrow8AVX(d, w, dprev *float64, cols int)

//go:noescape
func axpySetAVX(dst, x *float64, n int, a float64)

//go:noescape
func axpyAddAVX(dst, x *float64, n int, a float64)

//go:noescape
func adamStepAVX(w, grad, mw, vw *float64, n int, b1, b2, om1, om2, c1, c2, eps, lr float64)
