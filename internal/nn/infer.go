package nn

import "fmt"

// Kernel is a Forward-only view of a trained Network laid out for the
// serving hot path: all weights live in one flat row-major []float64 and
// all biases in another, so a forward pass walks two contiguous arrays
// instead of chasing per-layer *Matrix and per-neuron slices. A Kernel
// holds no scratch of its own — callers thread an explicit scratch
// buffer through every call — so one Kernel is immutable after
// construction and safe to share across any number of goroutines.
//
// Bit-identity contract: for the same input, Forward produces outputs
// byte-for-byte identical to Network.Forward. Both walk each row with
// the same sequential single-accumulator dot product (the mathx.Dot
// order) and the same softmax; only the memory layout differs. The
// determinism suites and the serve layer's reproducibility guarantee
// rely on this, so any change to the accumulation order here is a
// format-breaking change, not an optimisation.
type Kernel struct {
	layers []kernLayer
	w      []float64 // all layer weights, row-major, concatenated
	b      []float64 // all layer biases, concatenated
	inDim  int
	outDim int
	// maxWidth is the widest activation the kernel ever materialises
	// (max over layer outputs and the input), which fixes the scratch
	// stride for batch-major buffers.
	maxWidth int
}

// kernLayer locates one dense layer inside the flat arrays.
type kernLayer struct {
	rows, cols int
	woff       int // offset of the rows×cols weight block in Kernel.w
	boff       int // offset of the rows biases in Kernel.b
	act        Activation
}

// NewKernel builds an inference kernel from a trained network, copying
// the weights into the flat layout. The network is not retained; later
// training steps on n do not affect the kernel.
func NewKernel(n *Network) *Kernel {
	k := &Kernel{inDim: n.inDim, outDim: n.OutDim(), maxWidth: n.inDim}
	var wlen, blen int
	for _, l := range n.layers {
		wlen += l.w.Rows * l.w.Cols
		blen += l.w.Rows
		if l.w.Rows > k.maxWidth {
			k.maxWidth = l.w.Rows
		}
	}
	k.w = make([]float64, 0, wlen)
	k.b = make([]float64, 0, blen)
	for _, l := range n.layers {
		k.layers = append(k.layers, kernLayer{
			rows: l.w.Rows, cols: l.w.Cols,
			woff: len(k.w), boff: len(k.b),
			act: l.act,
		})
		k.w = append(k.w, l.w.Data...)
		k.b = append(k.b, l.b...)
	}
	return k
}

// InDim returns the expected input dimension.
func (k *Kernel) InDim() int { return k.inDim }

// OutDim returns the number of output classes.
func (k *Kernel) OutDim() int { return k.outDim }

// ScratchLen returns the scratch length required by Forward and
// PositiveScore for a single input.
func (k *Kernel) ScratchLen() int { return 2 * k.maxWidth }

// BatchScratchLen returns the scratch length ForwardBatch requires for
// n inputs.
func (k *Kernel) BatchScratchLen(n int) int { return 2 * n * k.maxWidth }

// forwardRaw runs all layers on x and returns the pre-softmax logits as
// a view into scratch (or x itself for a zero-layer kernel). It
// allocates nothing.
func (k *Kernel) forwardRaw(x, scratch []float64) []float64 {
	if len(x) != k.inDim {
		panic(fmt.Sprintf("nn: kernel input has dim %d, want %d", len(x), k.inDim))
	}
	if len(scratch) < k.ScratchLen() {
		panic(fmt.Sprintf("nn: kernel scratch has len %d, want >= %d", len(scratch), k.ScratchLen()))
	}
	cur := x
	buf0 := scratch[:k.maxWidth]
	buf1 := scratch[k.maxWidth : 2*k.maxWidth]
	out := buf0
	for li, l := range k.layers {
		w := k.w[l.woff : l.woff+l.rows*l.cols]
		bias := k.b[l.boff : l.boff+l.rows]
		in := cur[:l.cols]
		for r := 0; r < l.rows; r++ {
			// Sequential single-accumulator dot, the exact mathx.Dot
			// order Network.forward uses — required for bit identity.
			row := w[r*l.cols : (r+1)*l.cols]
			var s float64
			for c, wv := range row {
				s += wv * in[c]
			}
			out[r] = l.act.apply(s + bias[r])
		}
		cur = out[:l.rows]
		if li%2 == 0 {
			out = buf1
		} else {
			out = buf0
		}
	}
	return cur
}

// Forward writes the softmax class probabilities for x into dst, using
// scratch (len >= ScratchLen()) for activations. It performs no heap
// allocations and its outputs are bit-identical to Network.Forward.
//
//lint:hotpath gated by TestKernelZeroAllocs
func (k *Kernel) Forward(dst, x, scratch []float64) {
	if len(dst) != k.outDim {
		panic(fmt.Sprintf("nn: kernel output has dim %d, want %d", len(dst), k.outDim))
	}
	softmax(dst, k.forwardRaw(x, scratch))
}

// PositiveScore returns the probability of class 1 for x — LEAPME's
// similarity score — without allocating. The kernel must have at least
// two output classes; NewKernel callers validate topology at load time.
//
//lint:hotpath gated by TestKernelZeroAllocs
func (k *Kernel) PositiveScore(x, scratch []float64) float64 {
	z := k.forwardRaw(x, scratch)
	// The logits view lives in one half of scratch; the softmax result
	// can safely use the other half (both are maxWidth wide).
	var dst []float64
	if &z[0] == &scratch[0] {
		dst = scratch[k.maxWidth : k.maxWidth+k.outDim]
	} else {
		dst = scratch[:k.outDim]
	}
	softmax(dst, z)
	return dst[1]
}

// ForwardBatch scores n inputs stored back-to-back in xs (len n*InDim),
// writing softmax probabilities back-to-back into probs (len n*OutDim).
// scratch must have len >= BatchScratchLen(n). The loop order is
// batch-major — each weight row is streamed once per layer across the
// whole batch, instead of re-walking the full weight set per pair — but
// every individual input sees exactly the per-row sequential
// accumulation of Forward, so results are bit-identical to n separate
// Forward calls in any batch size.
//
//lint:hotpath gated by TestKernelZeroAllocs
func (k *Kernel) ForwardBatch(probs, xs []float64, n int, scratch []float64) {
	if n < 0 || len(xs) != n*k.inDim {
		panic(fmt.Sprintf("nn: kernel batch input has len %d, want %d", len(xs), n*k.inDim))
	}
	if len(probs) != n*k.outDim {
		panic(fmt.Sprintf("nn: kernel batch output has len %d, want %d", len(probs), n*k.outDim))
	}
	if len(scratch) < k.BatchScratchLen(n) {
		panic(fmt.Sprintf("nn: kernel batch scratch has len %d, want >= %d", len(scratch), k.BatchScratchLen(n)))
	}
	if n == 0 {
		return
	}
	buf0 := scratch[:n*k.maxWidth]
	buf1 := scratch[n*k.maxWidth : 2*n*k.maxWidth]
	cur, curStride := xs, k.inDim
	out := buf0
	for li, l := range k.layers {
		w := k.w[l.woff : l.woff+l.rows*l.cols]
		bias := k.b[l.boff : l.boff+l.rows]
		for r := 0; r < l.rows; r++ {
			row := w[r*l.cols : (r+1)*l.cols]
			bv := bias[r]
			for p := 0; p < n; p++ {
				in := cur[p*curStride : p*curStride+l.cols]
				var s float64
				for c, wv := range row {
					s += wv * in[c]
				}
				out[p*k.maxWidth+r] = l.act.apply(s + bv)
			}
		}
		cur, curStride = out, k.maxWidth
		if li%2 == 0 {
			out = buf1
		} else {
			out = buf0
		}
	}
	for p := 0; p < n; p++ {
		softmax(probs[p*k.outDim:(p+1)*k.outDim], cur[p*k.maxWidth:p*k.maxWidth+k.outDim])
	}
}
