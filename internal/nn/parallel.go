package nn

import (
	"math"
	"sync"

	"leapme/internal/mathx"
	"leapme/internal/parallel"
)

// Data-parallel mini-batch gradients.
//
// The batch is split into fixed-size chunks (gradChunkSize examples);
// each chunk's gradients are accumulated serially, in example order, into
// a private gradSlot, and the chunk partials are folded with a fixed
// binary-tree reduction. Both the chunk structure and the reduction order
// are pure functions of the batch size — the worker count only decides
// how many chunks are in flight at once — so training with 1 worker and
// with 8 produces bit-identical weights (the determinism gate in
// parallel_test.go and `make test-determinism`).
//
// Note the grouping of floating-point additions differs from the legacy
// serial loop (Workers == 0), which accumulates all examples into one
// buffer; the two paths can therefore differ in the last ulps. Workers=0
// is kept as the historical path; any Workers >= 1 is the deterministic
// chunked path.

// gradChunkSize is the number of examples accumulated serially into one
// gradient slot. A constant — never derived from the worker count.
const gradChunkSize = 8

// gradSlot is one chunk's private forward/backward state: per-layer
// scratch plus gradient accumulators. Slots let chunks run concurrently
// against the shared network weights, which are read-only for the
// duration of a batch.
type gradSlot struct {
	ins    [][]float64 // per-layer input copies
	outs   [][]float64 // per-layer activations
	deltas [][]float64 // per-layer dL/d(pre-activation)
	gw     []*mathx.Matrix
	gb     [][]float64
	probs  []float64
	loss   float64
}

func (n *Network) newGradSlot() *gradSlot {
	s := &gradSlot{probs: make([]float64, n.OutDim())}
	for _, l := range n.layers {
		s.ins = append(s.ins, make([]float64, l.w.Cols))
		s.outs = append(s.outs, make([]float64, l.w.Rows))
		s.deltas = append(s.deltas, make([]float64, l.w.Rows))
		s.gw = append(s.gw, mathx.NewMatrix(l.w.Rows, l.w.Cols))
		s.gb = append(s.gb, make([]float64, l.w.Rows))
	}
	return s
}

func (s *gradSlot) zero() {
	for i := range s.gw {
		s.gw[i].Zero()
		mathx.Zero(s.gb[i])
	}
	s.loss = 0
}

// merge folds src's gradient sums and loss into s.
func (s *gradSlot) merge(src *gradSlot) {
	for i := range s.gw {
		s.gw[i].AddScaled(1, src.gw[i])
		mathx.AddTo(s.gb[i], s.gb[i], src.gb[i])
	}
	s.loss += src.loss
}

// forwardSlot runs the network on x using the slot's scratch, mirroring
// layer.forward operation for operation so per-example results are
// bit-identical to the serial path.
func (n *Network) forwardSlot(s *gradSlot, x []float64) []float64 {
	h := x
	for li, l := range n.layers {
		copy(s.ins[li], h)
		out := s.outs[li]
		l.w.MulVec(out, h)
		for i := range out {
			out[i] = l.act.apply(out[i] + l.b[i])
		}
		h = out
	}
	return h
}

// backwardSlot accumulates one example's gradients into the slot given
// the softmax probabilities in s.probs, returning the cross-entropy loss.
// It mirrors Network.backward with the slot's buffers in place of the
// layers' shared scratch.
func (n *Network) backwardSlot(s *gradSlot, label int) float64 {
	last := len(n.layers) - 1
	for i := range s.deltas[last] {
		s.deltas[last][i] = s.probs[i]
		if i == label {
			s.deltas[last][i] -= 1
		}
	}
	for li := last; li > 0; li-- {
		cur := n.layers[li]
		s.gw[li].AddOuterTo(1, s.deltas[li], s.ins[li])
		mathx.AddTo(s.gb[li], s.gb[li], s.deltas[li])
		cur.w.MulVecT(s.deltas[li-1], s.deltas[li])
		prevAct := n.layers[li-1].act
		for i := range s.deltas[li-1] {
			s.deltas[li-1][i] *= prevAct.derivFromOutput(s.outs[li-1][i])
		}
	}
	s.gw[0].AddOuterTo(1, s.deltas[0], s.ins[0])
	mathx.AddTo(s.gb[0], s.gb[0], s.deltas[0])

	p := s.probs[label]
	if p < 1e-12 {
		p = 1e-12
	}
	return -math.Log(p)
}

// parTrainer owns the per-chunk gradient slots for one Fit run; slots are
// allocated once and reused across batches.
type parTrainer struct {
	n       *Network
	workers int
	slots   []*gradSlot
}

func newParTrainer(n *Network, workers, batchSize int) *parTrainer {
	numSlots := (batchSize + gradChunkSize - 1) / gradChunkSize
	t := &parTrainer{n: n, workers: workers}
	for i := 0; i < numSlots; i++ {
		t.slots = append(t.slots, n.newGradSlot())
	}
	return t
}

// batchGrads computes the gradient sum of the examples idx (indices into
// xs/ys) into the network's gradient buffers, which must be zeroed by the
// caller, and returns the batch's summed loss. Chunks run on up to
// t.workers goroutines; the merge is worker-count independent.
func (t *parTrainer) batchGrads(xs [][]float64, ys []int, idx []int) float64 {
	chunks := parallel.Chunks(len(idx), gradChunkSize)
	workers := t.workers
	if workers > len(chunks) {
		workers = len(chunks)
	}
	run := func(ci int) {
		c := chunks[ci]
		s := t.slots[ci]
		s.zero()
		for _, ei := range idx[c.Lo:c.Hi] {
			h := t.n.forwardSlot(s, xs[ei])
			softmax(s.probs, h)
			s.loss += t.n.backwardSlot(s, ys[ei])
		}
	}
	if workers <= 1 {
		for ci := range chunks {
			run(ci)
		}
	} else {
		ch := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			//lint:allow guardgo a panicking gradient chunk must crash Fit loudly; guard isolation would return a silently partial gradient sum
			go func() {
				defer wg.Done()
				for ci := range ch {
					run(ci)
				}
			}()
		}
		for ci := range chunks {
			ch <- ci
		}
		close(ch)
		wg.Wait()
	}
	parallel.TreeReduce(len(chunks), func(dst, src int) { t.slots[dst].merge(t.slots[src]) })
	s0 := t.slots[0]
	for li, l := range t.n.layers {
		l.gw.AddScaled(1, s0.gw[li])
		mathx.AddTo(l.gb, l.gb, s0.gb[li])
	}
	return s0.loss
}
