package nn

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Binary quantised-kernel format: magic, layer count, then per layer
// (rows, cols, activation, per-row float32 scales, per-row float32
// biases, int8 weights row-major), all little-endian. The core model
// file embeds this block length-prefixed when the descriptor carries the
// quantisation flag.
const quantMagic = "LEAPMEQ8"

// WriteTo serialises the quantised kernel.
func (k *QuantKernel) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var written int64
	count := func(n int, err error) error {
		written += int64(n)
		return err
	}
	if err := count(bw.WriteString(quantMagic)); err != nil {
		return written, err
	}
	buf := make([]byte, 4)
	writeU32 := func(v uint32) error {
		binary.LittleEndian.PutUint32(buf, v)
		return count(bw.Write(buf))
	}
	writeF32 := func(v float32) error {
		binary.LittleEndian.PutUint32(buf, math.Float32bits(v))
		return count(bw.Write(buf))
	}
	if err := writeU32(uint32(len(k.layers))); err != nil {
		return written, err
	}
	for _, l := range k.layers {
		if err := writeU32(uint32(l.rows)); err != nil {
			return written, err
		}
		if err := writeU32(uint32(l.cols)); err != nil {
			return written, err
		}
		if err := writeU32(uint32(l.act)); err != nil {
			return written, err
		}
		for r := 0; r < l.rows; r++ {
			if err := writeF32(k.scale[l.roff+r]); err != nil {
				return written, err
			}
		}
		for r := 0; r < l.rows; r++ {
			if err := writeF32(k.b[l.roff+r]); err != nil {
				return written, err
			}
		}
		for _, q := range k.w[l.woff : l.woff+l.rows*l.cols] {
			if err := count(1, bw.WriteByte(byte(q))); err != nil {
				return written, err
			}
		}
	}
	return written, bw.Flush()
}

// ReadQuantKernel deserialises a kernel written by WriteTo. It reads
// exactly the serialised bytes — no internal buffering consumes past the
// block — so a caller handing it a length-delimited reader can verify
// nothing trails the kernel. Every structural problem (bad magic,
// implausible shapes, unknown activation, mismatched layer chaining,
// truncation) is a load error: a model that claims to be quantised but
// cannot produce a valid kernel must fail closed, never silently fall
// back to anything else.
func ReadQuantKernel(r io.Reader) (*QuantKernel, error) {
	magic := make([]byte, len(quantMagic))
	if _, err := io.ReadFull(r, magic); err != nil {
		return nil, fmt.Errorf("nn: reading quant magic: %w", err)
	}
	if string(magic) != quantMagic {
		return nil, fmt.Errorf("nn: bad quant magic %q", magic)
	}
	buf := make([]byte, 4)
	readU32 := func() (int, error) {
		if _, err := io.ReadFull(r, buf); err != nil {
			return 0, err
		}
		return int(binary.LittleEndian.Uint32(buf)), nil
	}
	readF32 := func() (float32, error) {
		if _, err := io.ReadFull(r, buf); err != nil {
			return 0, err
		}
		return math.Float32frombits(binary.LittleEndian.Uint32(buf)), nil
	}
	nLayers, err := readU32()
	if err != nil {
		return nil, fmt.Errorf("nn: reading quant layer count: %w", err)
	}
	if nLayers <= 0 || nLayers > 1024 {
		return nil, fmt.Errorf("nn: implausible quant layer count %d", nLayers)
	}
	k := &QuantKernel{}
	for li := 0; li < nLayers; li++ {
		rows, err := readU32()
		if err != nil {
			return nil, fmt.Errorf("nn: quant layer %d rows: %w", li, err)
		}
		cols, err := readU32()
		if err != nil {
			return nil, fmt.Errorf("nn: quant layer %d cols: %w", li, err)
		}
		actI, err := readU32()
		if err != nil {
			return nil, fmt.Errorf("nn: quant layer %d activation: %w", li, err)
		}
		if rows <= 0 || cols <= 0 || rows > 1<<20 || cols > 1<<20 {
			return nil, fmt.Errorf("nn: implausible quant layer %d shape %dx%d", li, rows, cols)
		}
		if actI > int(ActIdentity) {
			return nil, fmt.Errorf("nn: unknown activation %d in quant layer %d", actI, li)
		}
		if li == 0 {
			k.inDim = cols
			k.maxWidth = cols
		} else if prev := k.layers[li-1]; prev.rows != cols {
			return nil, fmt.Errorf("nn: quant layer %d input dim %d does not match previous output %d", li, cols, prev.rows)
		}
		if rows > k.maxWidth {
			k.maxWidth = rows
		}
		k.layers = append(k.layers, qkLayer{
			rows: rows, cols: cols,
			woff: len(k.w), roff: len(k.scale),
			act: Activation(actI),
		})
		for r := 0; r < rows; r++ {
			s, err := readF32()
			if err != nil {
				return nil, fmt.Errorf("nn: quant layer %d scales: %w", li, err)
			}
			k.scale = append(k.scale, s)
		}
		for r := 0; r < rows; r++ {
			b, err := readF32()
			if err != nil {
				return nil, fmt.Errorf("nn: quant layer %d biases: %w", li, err)
			}
			k.b = append(k.b, b)
		}
		wbytes := make([]byte, rows*cols)
		if _, err := io.ReadFull(r, wbytes); err != nil {
			return nil, fmt.Errorf("nn: quant layer %d weights: %w", li, err)
		}
		for _, by := range wbytes {
			k.w = append(k.w, int8(by))
		}
	}
	k.outDim = k.layers[len(k.layers)-1].rows
	return k, nil
}
