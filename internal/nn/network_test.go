package nn

import (
	"math"
	"testing"

	"leapme/internal/mathx"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{InDim: 0, Out: 2}); err == nil {
		t.Error("zero input dim accepted")
	}
	if _, err := New(Config{InDim: 3, Out: 0}); err == nil {
		t.Error("zero output dim accepted")
	}
	if _, err := New(Config{InDim: 3, Hidden: []int{-1}, Out: 2}); err == nil {
		t.Error("negative hidden width accepted")
	}
}

func TestPaperConfigShape(t *testing.T) {
	n, err := New(PaperConfig(700, 1))
	if err != nil {
		t.Fatal(err)
	}
	if n.InDim() != 700 || n.OutDim() != 2 {
		t.Errorf("dims = %d → %d", n.InDim(), n.OutDim())
	}
	if len(n.layers) != 3 {
		t.Errorf("layer count = %d, want 3 (128, 64, 2)", len(n.layers))
	}
	if n.layers[0].w.Rows != 128 || n.layers[1].w.Rows != 64 {
		t.Errorf("hidden widths = %d, %d", n.layers[0].w.Rows, n.layers[1].w.Rows)
	}
}

func TestForwardIsDistribution(t *testing.T) {
	n, _ := New(Config{InDim: 4, Hidden: []int{8}, Out: 3, Seed: 1})
	p, err := n.Forward([]float64{0.1, -0.2, 0.3, 0.9})
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, v := range p {
		if v < 0 || v > 1 {
			t.Errorf("probability %v outside [0,1]", v)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("probabilities sum to %v", sum)
	}
}

func TestForwardDimCheck(t *testing.T) {
	n, _ := New(Config{InDim: 4, Out: 2, Seed: 1})
	if _, err := n.Forward([]float64{1, 2}); err == nil {
		t.Error("wrong input dim accepted")
	}
}

func TestPositiveScore(t *testing.T) {
	n, _ := New(Config{InDim: 2, Out: 2, Seed: 1})
	s, err := n.PositiveScore([]float64{0.5, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if s < 0 || s > 1 {
		t.Errorf("score %v outside [0,1]", s)
	}
	n1, _ := New(Config{InDim: 2, Out: 1, Seed: 1})
	if _, err := n1.PositiveScore([]float64{1, 2}); err == nil {
		t.Error("1-class PositiveScore accepted")
	}
}

func TestSoftmaxStability(t *testing.T) {
	dst := make([]float64, 3)
	softmax(dst, []float64{1000, 1000, 1000})
	for _, v := range dst {
		if math.IsNaN(v) || math.Abs(v-1.0/3) > 1e-9 {
			t.Errorf("softmax of large equal logits = %v", dst)
		}
	}
	softmax(dst, []float64{-1000, 0, 1000})
	if dst[2] < 0.999 {
		t.Errorf("softmax should saturate: %v", dst)
	}
}

// TestGradientCheck verifies backpropagation against central-difference
// numerical gradients on every parameter of a small network.
func TestGradientCheck(t *testing.T) {
	n, _ := New(Config{InDim: 3, Hidden: []int{5, 4}, Out: 2, Activation: ActTanh, Seed: 3})
	x := []float64{0.3, -0.7, 0.2}
	label := 1

	loss := func() float64 {
		p, err := n.Forward(x)
		if err != nil {
			t.Fatal(err)
		}
		return -math.Log(math.Max(p[label], 1e-300))
	}

	// Analytic gradients.
	probs, _ := n.Forward(x)
	// Forward again through internal path to set layer caches, then backward.
	h := x
	for _, l := range n.layers {
		h = l.forward(h)
	}
	pr := make([]float64, len(probs))
	softmax(pr, h)
	n.zeroGrads()
	n.backward(pr, label)

	const eps = 1e-6
	for li, l := range n.layers {
		for i := range l.w.Data {
			orig := l.w.Data[i]
			l.w.Data[i] = orig + eps
			up := loss()
			l.w.Data[i] = orig - eps
			down := loss()
			l.w.Data[i] = orig
			num := (up - down) / (2 * eps)
			ana := l.gw.Data[i]
			if math.Abs(num-ana) > 1e-5*(1+math.Abs(num)) {
				t.Fatalf("layer %d weight %d: numeric %g vs analytic %g", li, i, num, ana)
			}
		}
		for i := range l.b {
			orig := l.b[i]
			l.b[i] = orig + eps
			up := loss()
			l.b[i] = orig - eps
			down := loss()
			l.b[i] = orig
			num := (up - down) / (2 * eps)
			ana := l.gb[i]
			if math.Abs(num-ana) > 1e-5*(1+math.Abs(num)) {
				t.Fatalf("layer %d bias %d: numeric %g vs analytic %g", li, i, num, ana)
			}
		}
	}
}

func TestActivations(t *testing.T) {
	if ActReLU.apply(-1) != 0 || ActReLU.apply(2) != 2 {
		t.Error("ReLU broken")
	}
	if math.Abs(ActSigmoid.apply(0)-0.5) > 1e-12 {
		t.Error("sigmoid(0) != 0.5")
	}
	if ActTanh.apply(0) != 0 {
		t.Error("tanh(0) != 0")
	}
	if ActIdentity.apply(3.14) != 3.14 {
		t.Error("identity broken")
	}
	// derivFromOutput consistency for sigmoid: σ'(0) = 0.25.
	if math.Abs(ActSigmoid.derivFromOutput(0.5)-0.25) > 1e-12 {
		t.Error("sigmoid derivative broken")
	}
	for _, a := range []Activation{ActReLU, ActSigmoid, ActTanh, ActIdentity} {
		if a.String() == "invalid" {
			t.Errorf("activation %d has no name", a)
		}
	}
}

func TestDeterministicInit(t *testing.T) {
	a, _ := New(Config{InDim: 5, Hidden: []int{7}, Out: 2, Seed: 9})
	b, _ := New(Config{InDim: 5, Hidden: []int{7}, Out: 2, Seed: 9})
	for li := range a.layers {
		for i := range a.layers[li].w.Data {
			if a.layers[li].w.Data[i] != b.layers[li].w.Data[i] {
				t.Fatal("same seed produced different weights")
			}
		}
	}
	c, _ := New(Config{InDim: 5, Hidden: []int{7}, Out: 2, Seed: 10})
	same := true
	for li := range a.layers {
		for i := range a.layers[li].w.Data {
			if a.layers[li].w.Data[i] != c.layers[li].w.Data[i] {
				same = false
			}
		}
	}
	if same {
		t.Error("different seeds produced identical weights")
	}
}

func TestClassify(t *testing.T) {
	n, _ := New(Config{InDim: 2, Out: 2, Seed: 1})
	c, err := n.Classify([]float64{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if c != 0 && c != 1 {
		t.Errorf("class = %d", c)
	}
}

func TestGradAccumulationScaling(t *testing.T) {
	n, _ := New(Config{InDim: 2, Hidden: []int{3}, Out: 2, Seed: 4})
	x := []float64{1, -1}
	h := x
	for _, l := range n.layers {
		h = l.forward(h)
	}
	pr := make([]float64, 2)
	softmax(pr, h)
	n.zeroGrads()
	n.backward(pr, 0)
	g1 := mathx.Clone(n.layers[0].gw.Data)
	// Backward twice accumulates, then scaling by 2 averages.
	h = x
	for _, l := range n.layers {
		h = l.forward(h)
	}
	softmax(pr, h)
	n.backward(pr, 0)
	n.scaleGrads(2)
	for i := range g1 {
		if math.Abs(n.layers[0].gw.Data[i]-g1[i]) > 1e-12 {
			t.Fatal("gradient accumulation + scaling is not an average")
		}
	}
}
