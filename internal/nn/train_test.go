package nn

import (
	"bytes"
	"context"
	"math"
	"testing"

	"leapme/internal/mathx"
)

// xorData returns the XOR problem with jittered replicas — the classic
// non-linearly-separable sanity check for an MLP implementation.
func xorData(n int, seed int64) ([][]float64, []int) {
	rng := mathx.NewRand(seed)
	base := [][]float64{{0, 0}, {0, 1}, {1, 0}, {1, 1}}
	labels := []int{0, 1, 1, 0}
	var xs [][]float64
	var ys []int
	for i := 0; i < n; i++ {
		k := i % 4
		xs = append(xs, []float64{
			base[k][0] + rng.NormFloat64()*0.05,
			base[k][1] + rng.NormFloat64()*0.05,
		})
		ys = append(ys, labels[k])
	}
	return xs, ys
}

func TestFitLearnsXOR(t *testing.T) {
	xs, ys := xorData(200, 1)
	n, _ := New(Config{InDim: 2, Hidden: []int{16, 8}, Out: 2, Seed: 1})
	cfg := DefaultTrainConfig(1)
	cfg.Schedule = []Phase{{Epochs: 60, LR: 5e-3}, {Epochs: 20, LR: 1e-3}}
	loss, err := n.Fit(context.Background(), xs, ys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if loss > 0.2 {
		t.Errorf("final XOR loss = %v, want < 0.2", loss)
	}
	correct := 0
	for i, x := range xs {
		c, _ := n.Classify(x)
		if c == ys[i] {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(xs)); acc < 0.95 {
		t.Errorf("XOR accuracy = %v, want ≥ 0.95", acc)
	}
}

func TestFitWithSGDMomentum(t *testing.T) {
	xs, ys := xorData(200, 2)
	n, _ := New(Config{InDim: 2, Hidden: []int{16, 8}, Out: 2, Seed: 2})
	cfg := TrainConfig{
		Schedule:  []Phase{{Epochs: 150, LR: 0.1}},
		BatchSize: 16,
		Optimizer: NewSGD(0.9),
		Seed:      2,
	}
	loss, err := n.Fit(context.Background(), xs, ys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if loss > 0.3 {
		t.Errorf("SGD-momentum XOR loss = %v", loss)
	}
}

func TestFitValidation(t *testing.T) {
	n, _ := New(Config{InDim: 2, Out: 2, Seed: 1})
	if _, err := n.Fit(context.Background(), nil, nil, DefaultTrainConfig(1)); err == nil {
		t.Error("empty training set accepted")
	}
	if _, err := n.Fit(context.Background(), [][]float64{{1, 2}}, []int{0, 1}, DefaultTrainConfig(1)); err == nil {
		t.Error("mismatched labels accepted")
	}
	if _, err := n.Fit(context.Background(), [][]float64{{1}}, []int{0}, DefaultTrainConfig(1)); err == nil {
		t.Error("wrong input dim accepted")
	}
	if _, err := n.Fit(context.Background(), [][]float64{{1, 2}}, []int{5}, DefaultTrainConfig(1)); err == nil {
		t.Error("out-of-range label accepted")
	}
}

func TestFitDeterministic(t *testing.T) {
	xs, ys := xorData(60, 3)
	run := func() []float64 {
		n, _ := New(Config{InDim: 2, Hidden: []int{8}, Out: 2, Seed: 3})
		cfg := DefaultTrainConfig(3)
		cfg.Schedule = []Phase{{Epochs: 5, LR: 1e-3}}
		if _, err := n.Fit(context.Background(), xs, ys, cfg); err != nil {
			t.Fatal(err)
		}
		p, _ := n.Forward(xs[0])
		return p
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("training is not deterministic")
		}
	}
}

func TestOnEpochCallback(t *testing.T) {
	xs, ys := xorData(40, 4)
	n, _ := New(Config{InDim: 2, Hidden: []int{4}, Out: 2, Seed: 4})
	var epochs []int
	var losses []float64
	cfg := DefaultTrainConfig(4)
	cfg.Schedule = []Phase{{Epochs: 3, LR: 1e-3}, {Epochs: 2, LR: 1e-4}}
	cfg.OnEpoch = func(e int, l float64) {
		epochs = append(epochs, e)
		losses = append(losses, l)
	}
	if _, err := n.Fit(context.Background(), xs, ys, cfg); err != nil {
		t.Fatal(err)
	}
	if len(epochs) != 5 {
		t.Fatalf("callback fired %d times, want 5", len(epochs))
	}
	for i, e := range epochs {
		if e != i {
			t.Errorf("epoch indices = %v", epochs)
			break
		}
	}
	for _, l := range losses {
		if math.IsNaN(l) || l < 0 {
			t.Errorf("bad loss %v", l)
		}
	}
}

func TestPaperSchedule(t *testing.T) {
	s := PaperSchedule()
	if len(s) != 3 || s[0].Epochs != 10 || s[0].LR != 1e-3 ||
		s[1].Epochs != 5 || s[1].LR != 1e-4 || s[2].Epochs != 5 || s[2].LR != 1e-5 {
		t.Errorf("PaperSchedule = %+v", s)
	}
}

func TestOptimizerNamesAndReset(t *testing.T) {
	for _, o := range []Optimizer{NewSGD(0), NewSGD(0.9), NewAdam()} {
		if o.Name() == "" {
			t.Error("empty optimizer name")
		}
		o.Reset() // must not panic before first Step
	}
}

func TestSerializeRoundTrip(t *testing.T) {
	xs, ys := xorData(80, 5)
	n, _ := New(Config{InDim: 2, Hidden: []int{8, 4}, Out: 2, Seed: 5})
	cfg := DefaultTrainConfig(5)
	cfg.Schedule = []Phase{{Epochs: 10, LR: 1e-3}}
	if _, err := n.Fit(context.Background(), xs, ys, cfg); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := n.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	m, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if m.InDim() != n.InDim() || m.OutDim() != n.OutDim() {
		t.Fatal("round trip changed dims")
	}
	for _, x := range xs[:10] {
		pa, _ := n.Forward(x)
		pb, _ := m.Forward(x)
		for i := range pa {
			if pa[i] != pb[i] {
				t.Fatal("round trip changed predictions")
			}
		}
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("not a model"))); err == nil {
		t.Error("bad magic accepted")
	}
	var buf bytes.Buffer
	n, _ := New(Config{InDim: 2, Out: 2, Seed: 1})
	n.WriteTo(&buf)
	trunc := buf.Bytes()[:buf.Len()-3]
	if _, err := Read(bytes.NewReader(trunc)); err == nil {
		t.Error("truncated model accepted")
	}
}
