package nn

import "math"

// SIMD kernels for the training hot path.
//
// The flat training kernel's inner loops are eight independent
// per-example accumulator chains advanced in lockstep (see
// TrainKernel). Vertical SIMD — one VMULPD + VADDPD per column over
// the eight lanes — performs exactly the same multiply-then-add per
// lane as the scalar code: AVX packed mul/add are IEEE 754
// correctly-rounded per element, each lane stays an independent
// sequential chain, and no fused multiply-add is used (FMA rounds
// once where mul+add rounds twice, which would change bits). The
// assembly paths are therefore bit-identical to the generic Go
// paths below, which remain the reference semantics and the fallback
// for non-amd64 builds and pre-AVX CPUs.
//
// useAVX is resolved once at init via CPUID (OSXSAVE + AVX + YMM
// state enabled in XCR0); the _noasm build pins it false.
var useAVX = hasAVXAsm()

// fwdRow8 computes one weight row's contribution to a full chunk:
// acc[e] = Σ_c w[c]·x[c*8+e], each lane a sequential dot chain in
// ascending c starting from zero (the mathx.Dot order per example).
// x is unit-major with stride 8 and must hold len(w)*8 values.
func fwdRow8(acc *[gradChunkSize]float64, x, w []float64) {
	if useAVX {
		fwdrow8AVX(&x[0], &w[0], len(w), &acc[0])
		return
	}
	fwdrow8Generic(acc, x, w)
}

// fwd2Row8 runs fwdRow8 for two adjacent weight rows against the
// same chunk: w holds both rows back to back (len 2·cols), acc[0:8]
// gets the first row's lanes and acc[8:16] the second's. Fusing the
// rows keeps four independent accumulator chains in flight, hiding
// the add latency that bounds the single-row loop; each chain is
// still a strictly sequential dot in ascending c, so the bits match
// two fwdRow8 calls exactly.
func fwd2Row8(acc *[2 * gradChunkSize]float64, x, w []float64) {
	if useAVX {
		fwd2row8AVX(&x[0], &w[0], len(w)/2, &acc[0])
		return
	}
	fwd2row8Generic(acc, x, w)
}

// bwdRow8 propagates one row's deltas into the previous layer's
// delta block: dprev[c*8+e] += d[e]·w[c], unconditionally (the
// MulVecT order — no zero-skip, signed zeros must match). d holds
// the row's eight delta lanes, dprev is unit-major with stride 8.
func bwdRow8(d, w, dprev []float64) {
	if useAVX {
		bwdrow8AVX(&d[0], &w[0], &dprev[0], len(w))
		return
	}
	bwdrow8Generic(d, w, dprev)
}

// axpySet stores dst[i] = 0 + a·x[i]. The leading zero is
// load-bearing: it normalises a −0 product to +0 exactly as
// accumulating into a zeroed buffer does.
func axpySet(dst, x []float64, a float64) {
	if useAVX {
		axpySetAVX(&dst[0], &x[0], len(dst), a)
		return
	}
	axpySetGeneric(dst, x, a)
}

// axpyAdd accumulates dst[i] += a·x[i] with dst as the left operand
// of each add, matching the scalar accumulation order.
func axpyAdd(dst, x []float64, a float64) {
	if useAVX {
		axpyAddAVX(&dst[0], &x[0], len(dst), a)
		return
	}
	axpyAddGeneric(dst, x, a)
}

// adamStep applies one flat Adam update over n elements:
//
//	m = b1·mw[j] + (1−b1)·g
//	v = b2·vw[j] + (1−b2)·g·g
//	w[j] −= lr · (m/c1) / (√(v/c2) + eps)
//
// Every element is independent and every operation (including the
// divides and the square root) is correctly rounded per IEEE 754, so
// the vectorised path is bit-identical to this scalar order.
func adamStep(w, g, mw, vw []float64, b1, b2, c1, c2, eps, lr float64) {
	if useAVX {
		adamStepAVX(&w[0], &g[0], &mw[0], &vw[0], len(w), b1, b2, 1-b1, 1-b2, c1, c2, eps, lr)
		return
	}
	adamStepGeneric(w, g, mw, vw, b1, b2, c1, c2, eps, lr)
}

func fwdrow8Generic(acc *[gradChunkSize]float64, x, w []float64) {
	var a0, a1, a2, a3, a4, a5, a6, a7 float64
	for c, wv := range w {
		cb := c * gradChunkSize
		xc := x[cb : cb+gradChunkSize]
		a0 += wv * xc[0]
		a1 += wv * xc[1]
		a2 += wv * xc[2]
		a3 += wv * xc[3]
		a4 += wv * xc[4]
		a5 += wv * xc[5]
		a6 += wv * xc[6]
		a7 += wv * xc[7]
	}
	acc[0], acc[1], acc[2], acc[3] = a0, a1, a2, a3
	acc[4], acc[5], acc[6], acc[7] = a4, a5, a6, a7
}

func fwd2row8Generic(acc *[2 * gradChunkSize]float64, x, w []float64) {
	cols := len(w) / 2
	var a [gradChunkSize]float64
	fwdrow8Generic(&a, x, w[:cols])
	copy(acc[:gradChunkSize], a[:])
	fwdrow8Generic(&a, x, w[cols:])
	copy(acc[gradChunkSize:], a[:])
}

func bwdrow8Generic(d, w, dprev []float64) {
	dre := d[:gradChunkSize]
	d0, d1, d2, d3 := dre[0], dre[1], dre[2], dre[3]
	d4, d5, d6, d7 := dre[4], dre[5], dre[6], dre[7]
	for c, wv := range w {
		cb := c * gradChunkSize
		p := dprev[cb : cb+gradChunkSize]
		p[0] += d0 * wv
		p[1] += d1 * wv
		p[2] += d2 * wv
		p[3] += d3 * wv
		p[4] += d4 * wv
		p[5] += d5 * wv
		p[6] += d6 * wv
		p[7] += d7 * wv
	}
}

func axpySetGeneric(dst, x []float64, a float64) {
	for i := range dst {
		dst[i] = 0 + a*x[i]
	}
}

func axpyAddGeneric(dst, x []float64, a float64) {
	for i := range dst {
		dst[i] += a * x[i]
	}
}

func adamStepGeneric(w, g, mw, vw []float64, b1, b2, c1, c2, eps, lr float64) {
	for j, gv := range g {
		m := b1*mw[j] + (1-b1)*gv
		v := b2*vw[j] + (1-b2)*gv*gv
		mw[j] = m
		vw[j] = v
		w[j] -= lr * (m / c1) / (math.Sqrt(v/c2) + eps)
	}
}
