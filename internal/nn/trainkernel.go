package nn

import (
	"context"
	"errors"
	"fmt"
	"math"

	"leapme/internal/mathx"
	"leapme/internal/parallel"
)

// TrainKernel is the training-side twin of the inference Kernel: the
// whole network — weights, biases, batch gradients, optimizer moments,
// and the phase-rollback snapshot — lives in flat row-major float64
// slabs, and each gradient chunk runs a fused forward/backward pass over
// a per-chunk arena instead of gradSlot's per-layer slice-of-slices.
//
// Memory layout (shared with Kernel via kernLayer):
//
//	w    ┌ layer0 rows×cols ┬ layer1 rows×cols ┬ … ┐   row-major weights
//	b    ┌ layer0 rows      ┬ layer1 rows      ┬ … ┐   biases
//	gw/gb, mw/vw/mb/vb, velW/velB, snap: same offsets as w and b
//
// Per-chunk arenas hold activations and deltas unit-major with a fixed
// stride of gradChunkSize: outs[li][r*8+e] is unit r of example e, so
// the fused pass streams each weight row once per chunk across all
// eight examples (eight independent accumulator chains) instead of
// re-walking the full weight set per example.
//
// Bit-identity contract: Fit reproduces the chunked Network.Fit path
// (Workers ≥ 1) byte for byte — same fixed 8-example chunks, same
// per-chunk example-order accumulation, same binary-tree reduction,
// same per-element optimizer arithmetic — for every worker count. The
// golden equivalence test and the determinism gates pin this; any
// change to an accumulation order here is a model-format change, not an
// optimisation. (The Workers == 0 legacy serial path differs in last
// ulps and is intentionally out of scope, exactly as for parTrainer.)
//
// On amd64 the full-chunk inner loops dispatch to the AVX kernels in
// simd_amd64.s (vertical lane arithmetic only — see simd.go for why
// that preserves the contract bit for bit); everywhere else, and for
// partial tail chunks, the scalar loops below are the implementation
// as well as the reference.
type TrainKernel struct {
	net    *Network // weights are written back here on every Fit exit
	layers []kernLayer
	inDim  int
	outDim int
	wlen   int
	blen   int

	w, b   []float64 // parameters, flat
	gw, gb []float64 // batch-averaged gradients, flat
	snap   []float64 // phase checkpoint: w then b

	// Optimizer state, the flat twin of Adam/SGD from optimizer.go.
	optKind           int // optAdam or optSGD
	beta1, beta2, eps float64
	momentum          float64
	adamT             int
	mw, vw, mb, vb    []float64 // Adam moments (weights, biases)
	velW, velB        []float64 // SGD momentum velocities

	cfg     TrainConfig
	workers int

	slots []*trainSlot

	// Per-batch dispatch state for the persistent worker pool. The
	// channels are buffered to len(slots) so a batch's sends never block.
	curXS  []float64
	curYS  []int
	curIdx []int
	tasks  chan int
	done   chan struct{}
}

const (
	optAdam = iota
	optSGD
)

// trainSlot is one chunk's fused forward/backward arena. Activation and
// delta blocks are unit-major with stride gradChunkSize; gradient slabs
// mirror the kernel's flat layout so the reduction indexes them
// uniformly.
type trainSlot struct {
	gw, gb []float64   // per-chunk gradient sums, flat kernel layout
	outs   [][]float64 // per-layer activations, unit-major [r*8+e]
	outsEM [][]float64 // the same activations example-major [e*rows+r]
	deltas [][]float64 // per-layer dL/d(pre-activation), unit-major
	inT    []float64   // transposed chunk input [c*8+e]
	inEM   []float64   // chunk input example-major [e*inDim+c]
	probs  []float64   // softmax probabilities, example-major [e*out+r]
	loss   float64
}

// NewTrainKernel builds a training kernel over n, copying its weights
// into the flat layout and pre-allocating every arena the epoch loop
// touches, so the loop itself performs no heap allocations. cfg is
// defaulted exactly as Network.Fit defaults it; the optimizer must be a
// fresh *Adam or *SGD (no accumulated state), because its state moves
// into the kernel's flat slabs. Trained weights are written back into n
// when Fit returns, so serialization and inference read the same bytes
// as a Network.Fit-trained network.
func NewTrainKernel(n *Network, cfg TrainConfig) (*TrainKernel, error) {
	if n == nil {
		return nil, errors.New("nn: NewTrainKernel on nil network")
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 32
	}
	if cfg.Optimizer == nil {
		cfg.Optimizer = NewAdam()
	}
	if len(cfg.Schedule) == 0 {
		cfg.Schedule = PaperSchedule()
	}
	if cfg.MaxPhaseRetries <= 0 {
		cfg.MaxPhaseRetries = 3
	}
	if cfg.LRBackoff <= 0 || cfg.LRBackoff >= 1 {
		cfg.LRBackoff = 0.1
	}
	if cfg.ExplodeThreshold <= 0 {
		cfg.ExplodeThreshold = 1e8
	}

	k := &TrainKernel{net: n, inDim: n.inDim, outDim: n.OutDim(), cfg: cfg}
	for _, l := range n.layers {
		k.layers = append(k.layers, kernLayer{
			rows: l.w.Rows, cols: l.w.Cols,
			woff: k.wlen, boff: k.blen,
			act: l.act,
		})
		k.wlen += l.w.Rows * l.w.Cols
		k.blen += l.w.Rows
	}
	k.w = make([]float64, k.wlen)
	k.b = make([]float64, k.blen)
	k.gw = make([]float64, k.wlen)
	k.gb = make([]float64, k.blen)
	k.snap = make([]float64, k.wlen+k.blen)
	for li, l := range n.layers {
		copy(k.w[k.layers[li].woff:], l.w.Data)
		copy(k.b[k.layers[li].boff:], l.b)
	}

	switch opt := cfg.Optimizer.(type) {
	case *Adam:
		if opt.t != 0 || opt.m != nil || opt.v != nil {
			return nil, errors.New("nn: NewTrainKernel requires a fresh optimizer (Adam has accumulated state)")
		}
		k.optKind = optAdam
		k.beta1, k.beta2, k.eps = opt.Beta1, opt.Beta2, opt.Eps
		k.mw = make([]float64, k.wlen)
		k.vw = make([]float64, k.wlen)
		k.mb = make([]float64, k.blen)
		k.vb = make([]float64, k.blen)
	case *SGD:
		if opt.vel != nil {
			return nil, errors.New("nn: NewTrainKernel requires a fresh optimizer (SGD has accumulated state)")
		}
		k.optKind = optSGD
		k.momentum = opt.Momentum
		if opt.Momentum != 0 {
			k.velW = make([]float64, k.wlen)
			k.velB = make([]float64, k.blen)
		}
	default:
		return nil, fmt.Errorf("nn: NewTrainKernel does not support optimizer %s", cfg.Optimizer.Name())
	}

	numSlots := (cfg.BatchSize + gradChunkSize - 1) / gradChunkSize
	for i := 0; i < numSlots; i++ {
		s := &trainSlot{
			gw:    make([]float64, k.wlen),
			gb:    make([]float64, k.blen),
			inT:   make([]float64, k.inDim*gradChunkSize),
			inEM:  make([]float64, k.inDim*gradChunkSize),
			probs: make([]float64, k.outDim*gradChunkSize),
		}
		for _, l := range k.layers {
			s.outs = append(s.outs, make([]float64, l.rows*gradChunkSize))
			s.outsEM = append(s.outsEM, make([]float64, l.rows*gradChunkSize))
			s.deltas = append(s.deltas, make([]float64, l.rows*gradChunkSize))
		}
		k.slots = append(k.slots, s)
	}
	k.workers = parallel.Resolve(cfg.Workers)
	return k, nil
}

// InDim returns the expected input dimension.
func (k *TrainKernel) InDim() int { return k.inDim }

// OutDim returns the number of output classes.
func (k *TrainKernel) OutDim() int { return k.outDim }

// Fit trains on a flat row-major training set: example i occupies
// xs[i*InDim : (i+1)*InDim] and ys[i] is its class. The control flow —
// validation, shuffling, batching, divergence rollback, callbacks,
// cancellation — mirrors Network.Fit statement for statement, and the
// resulting weights are bit-identical to Network.Fit with Workers ≥ 1
// on the same data for every worker count. The final weights are
// written back into the source Network on every exit path that touched
// them, so the network serializes identically however it was trained.
func (k *TrainKernel) Fit(ctx context.Context, xs []float64, ys []int) (float64, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	n := len(ys)
	if n == 0 {
		return 0, errors.New("nn: Fit with no training examples")
	}
	if len(xs) != n*k.inDim {
		return 0, fmt.Errorf("nn: flat training set has len %d, want %d (%d examples × dim %d)",
			len(xs), n*k.inDim, n, k.inDim)
	}
	for i := 0; i < n; i++ {
		row := xs[i*k.inDim : (i+1)*k.inDim]
		for j, v := range row {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return 0, fmt.Errorf("nn: example %d has non-finite feature %d (%v)", i, j, v)
			}
		}
		if ys[i] < 0 || ys[i] >= k.outDim {
			return 0, fmt.Errorf("nn: label %d of example %d outside [0, %d)", ys[i], i, k.outDim)
		}
	}
	cfg := k.cfg

	rng := mathx.NewRand(cfg.Seed)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	if k.workers > 1 {
		k.startWorkers()
		defer k.stopWorkers()
	}

	var lastLoss float64
	epoch := 0
	for pi, phase := range cfg.Schedule {
		lr := phase.LR
		// The rollback checkpoint: parameters as of the start of the
		// phase, i.e. the last state every earlier phase signed off on.
		k.snapshot()
		retries := 0
		for e := 0; e < phase.Epochs; e++ {
			mathx.Shuffle(order, rng)
			var epochLoss float64
			for start := 0; start < len(order); start += cfg.BatchSize {
				if err := ctx.Err(); err != nil {
					k.writeBack()
					return lastLoss, err
				}
				end := start + cfg.BatchSize
				if end > len(order) {
					end = len(order)
				}
				epochLoss += k.runBatch(xs, ys, order[start:end], lr)
				if math.IsNaN(epochLoss) || math.IsInf(epochLoss, 0) {
					break // mid-epoch divergence: no point finishing the epoch
				}
			}

			reason := ""
			if math.IsNaN(epochLoss) || math.IsInf(epochLoss, 0) {
				reason = "non-finite loss"
			} else if m := k.maxAbsParam(); math.IsNaN(m) || m > cfg.ExplodeThreshold {
				reason = fmt.Sprintf("exploding weights (max |w| = %g)", m)
			}
			if reason != "" {
				retries++
				if retries > cfg.MaxPhaseRetries {
					k.restore()
					k.writeBack()
					return lastLoss, fmt.Errorf("%w: phase %d: %s after %d recovery attempts",
						ErrDiverged, pi, reason, cfg.MaxPhaseRetries)
				}
				k.restore()
				k.resetOpt() // stale moments would re-poison the restored weights
				lr *= cfg.LRBackoff
				if cfg.OnRecovery != nil {
					cfg.OnRecovery(pi, retries, lr, reason)
				}
				e = -1 // restart the phase from the checkpoint
				continue
			}

			lastLoss = epochLoss / float64(n)
			if cfg.OnEpoch != nil {
				cfg.OnEpoch(epoch, lastLoss)
			}
			epoch++
		}
	}
	k.writeBack()
	return lastLoss, nil
}

// startWorkers launches the persistent chunk workers for one Fit run.
// Sends of a chunk index happen-before the worker's reads of the batch
// state, and the worker's slot writes happen-before the main
// goroutine's done receive, so the pool is race-free by construction.
func (k *TrainKernel) startWorkers() {
	k.tasks = make(chan int, len(k.slots))
	k.done = make(chan struct{}, len(k.slots))
	// Workers capture the channels as locals: a goroutine the scheduler
	// never runs until after Fit returns must not read the struct fields
	// stopWorkers nils out.
	tasks, done := k.tasks, k.done
	for w := 0; w < k.workers; w++ {
		//lint:allow guardgo a panicking gradient chunk must crash Fit loudly; guard isolation would return a silently partial gradient sum
		go func() {
			for ci := range tasks {
				k.chunkGrads(ci)
				done <- struct{}{}
			}
		}()
	}
}

func (k *TrainKernel) stopWorkers() {
	close(k.tasks)
	k.tasks, k.done = nil, nil
}

// runBatch computes one mini-batch update: fused chunk gradients (up to
// k.workers in flight), the fused tree reduction with batch averaging,
// one optimizer step, and decoupled weight decay. It returns the
// batch's summed loss. Allocation-free; the chunk structure and every
// accumulation order are pure functions of the batch, never of the
// worker count.
//
//lint:hotpath gated by TestTrainKernelEpochAllocs
func (k *TrainKernel) runBatch(xs []float64, ys []int, idx []int, lr float64) float64 {
	nChunks := (len(idx) + gradChunkSize - 1) / gradChunkSize
	workers := k.workers
	if workers > nChunks {
		workers = nChunks
	}
	k.curXS, k.curYS, k.curIdx = xs, ys, idx
	if workers <= 1 || k.tasks == nil {
		for ci := 0; ci < nChunks; ci++ {
			k.chunkGrads(ci)
		}
	} else {
		for ci := 0; ci < nChunks; ci++ {
			k.tasks <- ci
		}
		for i := 0; i < nChunks; i++ {
			<-k.done
		}
	}
	loss := k.reduceGrads(nChunks, 1/float64(len(idx)))
	k.optStep(lr)
	if k.cfg.WeightDecay > 0 {
		shrink := 1 - lr*k.cfg.WeightDecay
		for j := range k.w {
			k.w[j] *= shrink // biases are conventionally not decayed
		}
	}
	return loss
}

// chunkGrads runs the fused forward/backward pass for chunk ci of the
// current batch, writing the chunk's gradient sums and loss into its
// slot. Within the chunk every example sees the exact serial
// accumulation order of forwardSlot/backwardSlot — the batch-major loop
// only interleaves the eight independent per-example accumulator
// chains, it never regroups any individual sum.
//
//lint:hotpath gated by TestTrainKernelEpochAllocs
func (k *TrainKernel) chunkGrads(ci int) {
	idx := k.curIdx
	lo := ci * gradChunkSize
	hi := lo + gradChunkSize
	if hi > len(idx) {
		hi = len(idx)
	}
	m := hi - lo
	s := k.slots[ci]
	xs := k.curXS

	// Gather the chunk's input rows in both layouts — example-major for
	// the gradient sweeps, unit-major (transposed) for the forward pass.
	// Pure copies, no arithmetic, so layout cannot affect bits.
	inT := s.inT
	inEM := s.inEM
	for e := 0; e < m; e++ {
		row := xs[idx[lo+e]*k.inDim : (idx[lo+e]+1)*k.inDim]
		copy(inEM[e*k.inDim:(e+1)*k.inDim], row)
		for c, v := range row {
			inT[c*gradChunkSize+e] = v
		}
	}

	// Forward, batch-major: each weight row streams once across the
	// chunk; each example keeps its private sequential dot accumulator
	// (the mathx.Dot order), advanced in lockstep over c. The full-chunk
	// case is unrolled into eight named accumulators — eight independent
	// dependency chains the CPU overlaps — which is where the kernel's
	// single-core speedup comes from.
	cur := inT
	for li := range k.layers {
		l := &k.layers[li]
		w := k.w[l.woff : l.woff+l.rows*l.cols]
		bias := k.b[l.boff : l.boff+l.rows]
		out := s.outs[li]
		if m == gradChunkSize {
			var acc2 [2 * gradChunkSize]float64
			r := 0
			for ; r+2 <= l.rows; r += 2 {
				fwd2Row8(&acc2, cur, w[r*l.cols:(r+2)*l.cols])
				bv0, bv1 := bias[r], bias[r+1]
				o := out[r*gradChunkSize : (r+2)*gradChunkSize]
				for e := 0; e < gradChunkSize; e++ {
					o[e] = l.act.apply(acc2[e] + bv0)
					o[gradChunkSize+e] = l.act.apply(acc2[gradChunkSize+e] + bv1)
				}
			}
			if r < l.rows {
				var acc [gradChunkSize]float64
				fwdRow8(&acc, cur, w[r*l.cols:(r+1)*l.cols])
				bv := bias[r]
				o := out[r*gradChunkSize : (r+1)*gradChunkSize]
				for e := 0; e < gradChunkSize; e++ {
					o[e] = l.act.apply(acc[e] + bv)
				}
			}
		} else {
			for r := 0; r < l.rows; r++ {
				row := w[r*l.cols : (r+1)*l.cols]
				var acc [gradChunkSize]float64
				for c, wv := range row {
					cb := c * gradChunkSize
					for e := 0; e < m; e++ {
						acc[e] += wv * cur[cb+e]
					}
				}
				bv := bias[r]
				rb := r * gradChunkSize
				for e := 0; e < m; e++ {
					out[rb+e] = l.act.apply(acc[e] + bv)
				}
			}
		}
		// Mirror the activations example-major for the gradient sweeps
		// and the softmax reads — a pure copy, bit-neutral.
		em := s.outsEM[li]
		for r := 0; r < l.rows; r++ {
			rb := r * gradChunkSize
			for e := 0; e < m; e++ {
				em[e*l.rows+r] = out[rb+e]
			}
		}
		cur = out
	}

	// Softmax, loss and output deltas per example, in example order. The
	// example-major mirror of the last layer is exactly each example's
	// logit vector.
	last := len(k.layers) - 1
	lastEM := s.outsEM[last]
	dlast := s.deltas[last]
	ys := k.curYS
	s.loss = 0
	for e := 0; e < m; e++ {
		pb := s.probs[e*k.outDim : (e+1)*k.outDim]
		softmax(pb, lastEM[e*k.outDim:(e+1)*k.outDim])
		label := ys[idx[lo+e]]
		for r := 0; r < k.outDim; r++ {
			d := pb[r]
			if r == label {
				d -= 1
			}
			dlast[r*gradChunkSize+e] = d
		}
		p := pb[label]
		if p < 1e-12 {
			p = 1e-12
		}
		s.loss += -math.Log(p)
	}

	// Backward: per layer, gradient accumulation then delta propagation,
	// exactly backwardSlot's order per example.
	for li := last; li > 0; li-- {
		l := &k.layers[li]
		k.accumLayerGrads(s, li, s.outsEM[li-1], m)
		w := k.w[l.woff : l.woff+l.rows*l.cols]
		dcur := s.deltas[li]
		dprev := s.deltas[li-1]
		pn := l.cols * gradChunkSize
		for i := 0; i < pn; i++ {
			dprev[i] = 0
		}
		// MulVecT order: dst[c] += delta[r]*w[r][c], r ascending,
		// unconditional (no zero-skip — signed zeros must match).
		if m == gradChunkSize {
			for r := 0; r < l.rows; r++ {
				rb := r * gradChunkSize
				bwdRow8(dcur[rb:rb+gradChunkSize], w[r*l.cols:(r+1)*l.cols], dprev)
			}
		} else {
			for r := 0; r < l.rows; r++ {
				row := w[r*l.cols : (r+1)*l.cols]
				var dr [gradChunkSize]float64
				rb := r * gradChunkSize
				for e := 0; e < m; e++ {
					dr[e] = dcur[rb+e]
				}
				for c, wv := range row {
					cb := c * gradChunkSize
					for e := 0; e < m; e++ {
						dprev[cb+e] += dr[e] * wv
					}
				}
			}
		}
		prevAct := k.layers[li-1].act
		prevOut := s.outs[li-1]
		for i := 0; i < pn; i++ {
			dprev[i] *= prevAct.derivFromOutput(prevOut[i])
		}
	}
	k.accumLayerGrads(s, 0, s.inEM, m)
}

// accumLayerGrads stores layer li's chunk gradient sums — gw from the
// outer products delta×input, gb from the delta sums — as one axpy
// sweep per live delta lane over the example-major inputs, lanes in
// ascending example order. The AddOuterTo zero-skip is preserved per
// (example, row): a zero delta contributes nothing to gw (its lane is
// compacted away), while gb adds unconditionally, exactly as
// backwardSlot does; per column the sweep order reproduces the
// column-major zero-skip chain term for term.
//
//lint:hotpath gated by TestTrainKernelEpochAllocs
func (k *TrainKernel) accumLayerGrads(s *trainSlot, li int, insEM []float64, m int) {
	l := &k.layers[li]
	d := s.deltas[li]
	gw := s.gw[l.woff : l.woff+l.rows*l.cols]
	gb := s.gb[l.boff : l.boff+l.rows]
	for r := 0; r < l.rows; r++ {
		// Compact the nonzero delta lanes up front (ascending, so the
		// per-column accumulation order is exactly AddOuterTo's zero-skip
		// order) instead of re-testing every lane in the column loop.
		var dr [gradChunkSize]float64
		var nzi [gradChunkSize]int32
		nz := 0
		rb := r * gradChunkSize
		for e := 0; e < m; e++ {
			v := d[rb+e]
			dr[e] = v
			if v != 0 {
				nzi[nz] = int32(e)
				nz++
			}
		}
		var bs float64
		for e := 0; e < m; e++ {
			bs += dr[e]
		}
		gb[r] = bs
		grow := gw[r*l.cols : (r+1)*l.cols]
		if nz == 0 {
			// Every example skipped this row: the slot value is the
			// untouched zero, exactly as AddOuterTo leaves it.
			for c := range grow {
				grow[c] = 0
			}
			continue
		}
		// First live lane seeds each column with 0 + d·x (the leading
		// zero is load-bearing for −0 products), the rest accumulate in
		// ascending example order — per column exactly the zero-skip
		// chain the legacy AddOuterTo runs.
		e0 := int(nzi[0])
		axpySet(grow, insEM[e0*l.cols:][:len(grow)], dr[e0])
		for _, e := range nzi[1:nz] {
			axpyAdd(grow, insEM[int(e)*l.cols:][:len(grow)], dr[e])
		}
	}
}

// reduceGrads folds the first nChunks slots into the kernel's gradient
// slabs with the parallel.TreeReduce combination order, the zero-grads
// fold and the 1/batch scale fused into a single per-element pass:
// g = (0 + tree(slots)) * inv, which is bit-identical to zeroGrads +
// merge tree + AddScaled(1, s0) + scaleGrads. The explicit leading zero
// is load-bearing: it normalises a −0 tree total to +0 exactly as the
// fold into zeroed buffers does. Returns the batch loss (the same tree
// over the slot losses, unscaled).
//
//lint:hotpath gated by TestTrainKernelEpochAllocs
func (k *TrainKernel) reduceGrads(nChunks int, inv float64) float64 {
	s := k.slots
	switch nChunks {
	case 1:
		a := s[0]
		for j, v := range a.gw {
			k.gw[j] = (0 + v) * inv
		}
		for j, v := range a.gb {
			k.gb[j] = (0 + v) * inv
		}
		return a.loss
	case 2:
		a, b := s[0], s[1]
		for j, v := range a.gw {
			k.gw[j] = (0 + (v + b.gw[j])) * inv
		}
		for j, v := range a.gb {
			k.gb[j] = (0 + (v + b.gb[j])) * inv
		}
		return a.loss + b.loss
	case 3:
		a, b, c := s[0], s[1], s[2]
		for j, v := range a.gw {
			k.gw[j] = (0 + ((v + b.gw[j]) + c.gw[j])) * inv
		}
		for j, v := range a.gb {
			k.gb[j] = (0 + ((v + b.gb[j]) + c.gb[j])) * inv
		}
		return (a.loss + b.loss) + c.loss
	case 4:
		a, b, c, d := s[0], s[1], s[2], s[3]
		for j, v := range a.gw {
			k.gw[j] = (0 + ((v + b.gw[j]) + (c.gw[j] + d.gw[j]))) * inv
		}
		for j, v := range a.gb {
			k.gb[j] = (0 + ((v + b.gb[j]) + (c.gb[j] + d.gb[j]))) * inv
		}
		return (a.loss + b.loss) + (c.loss + d.loss)
	}
	// General tree for batch sizes beyond 32: replay TreeReduce's merge
	// sequence element-wise through the first slot's slab.
	for stride := 1; stride < nChunks; stride *= 2 {
		for i := 0; i+stride < nChunks; i += 2 * stride {
			dst, src := s[i], s[i+stride]
			for j, v := range src.gw {
				dst.gw[j] += v
			}
			for j, v := range src.gb {
				dst.gb[j] += v
			}
			dst.loss += src.loss
		}
	}
	for j, v := range s[0].gw {
		k.gw[j] = (0 + v) * inv
	}
	for j, v := range s[0].gb {
		k.gb[j] = (0 + v) * inv
	}
	return s[0].loss
}

// optStep applies one optimizer update to the flat parameters with the
// exact per-element arithmetic of Adam.Step / SGD.Step; only the
// iteration grouping differs (all weights then all biases), which is
// bit-irrelevant for element-independent updates.
//
//lint:hotpath gated by TestTrainKernelEpochAllocs
func (k *TrainKernel) optStep(lr float64) {
	if k.optKind == optAdam {
		k.adamT++
		c1 := 1 - math.Pow(k.beta1, float64(k.adamT))
		c2 := 1 - math.Pow(k.beta2, float64(k.adamT))
		adamStep(k.w, k.gw, k.mw, k.vw, k.beta1, k.beta2, c1, c2, k.eps, lr)
		adamStep(k.b, k.gb, k.mb, k.vb, k.beta1, k.beta2, c1, c2, k.eps, lr)
		return
	}
	if k.momentum == 0 {
		for j, g := range k.gw {
			k.w[j] += -lr * g
		}
		for j, g := range k.gb {
			k.b[j] += -lr * g
		}
		return
	}
	mom := k.momentum
	for j, g := range k.gw {
		v := k.velW[j] * mom
		v += -lr * g
		k.velW[j] = v
		k.w[j] += 1 * v
	}
	for j, g := range k.gb {
		v := mom*k.velB[j] - lr*g
		k.velB[j] = v
		k.b[j] += v
	}
}

// snapshot records the current parameters as the phase checkpoint.
func (k *TrainKernel) snapshot() {
	copy(k.snap[:k.wlen], k.w)
	copy(k.snap[k.wlen:], k.b)
}

// restore rolls the parameters back to the phase checkpoint.
func (k *TrainKernel) restore() {
	copy(k.w, k.snap[:k.wlen])
	copy(k.b, k.snap[k.wlen:])
}

// resetOpt clears the optimizer state, the flat twin of Optimizer.Reset
// (dropped buffers are re-initialised to zero on the next step either
// way).
func (k *TrainKernel) resetOpt() {
	k.adamT = 0
	mathx.Zero(k.mw)
	mathx.Zero(k.vw)
	mathx.Zero(k.mb)
	mathx.Zero(k.vb)
	mathx.Zero(k.velW)
	mathx.Zero(k.velB)
}

// maxAbsParam is the exploding-weights detector over the flat
// parameters: the largest magnitude, or NaN if any parameter is NaN.
func (k *TrainKernel) maxAbsParam() float64 {
	m := 0.0
	for _, v := range k.w {
		if math.IsNaN(v) {
			return math.NaN()
		}
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	for _, v := range k.b {
		if math.IsNaN(v) {
			return math.NaN()
		}
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

// writeBack copies the kernel's parameters into the source network, so
// the network's own forward pass, serialization and kernels see the
// trained weights.
func (k *TrainKernel) writeBack() {
	for li, l := range k.net.layers {
		kl := k.layers[li]
		copy(l.w.Data, k.w[kl.woff:kl.woff+kl.rows*kl.cols])
		copy(l.b, k.b[kl.boff:kl.boff+kl.rows])
	}
}
