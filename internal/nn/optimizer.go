package nn

import (
	"fmt"
	"math"

	"leapme/internal/mathx"
)

// Optimizer applies accumulated gradients to a network's parameters.
type Optimizer interface {
	// Step applies one update with the given learning rate. The network's
	// gradient buffers hold the (already batch-averaged) gradients.
	Step(n *Network, lr float64)
	// Reset clears any internal state (momentum buffers etc.).
	Reset()
	// Name identifies the optimizer in logs and serialized models.
	Name() string
}

// SGD is plain stochastic gradient descent, optionally with classical
// momentum. The paper's reference implementation uses Adam, but SGD is
// kept for ablations.
type SGD struct {
	Momentum float64
	vel      []velocity
}

type velocity struct {
	w *mathx.Matrix
	b []float64
}

// velocitiesFit reports whether the buffers match the network's shape.
func velocitiesFit(vs []velocity, n *Network) bool {
	if len(vs) != len(n.layers) {
		return false
	}
	for i, l := range n.layers {
		if vs[i].w.Rows != l.w.Rows || vs[i].w.Cols != l.w.Cols || len(vs[i].b) != len(l.b) {
			return false
		}
	}
	return true
}

// NewSGD returns an SGD optimizer with the given momentum (0 disables it).
func NewSGD(momentum float64) *SGD { return &SGD{Momentum: momentum} }

// Name implements Optimizer.
func (s *SGD) Name() string { return fmt.Sprintf("sgd(momentum=%g)", s.Momentum) }

// Reset implements Optimizer.
func (s *SGD) Reset() { s.vel = nil }

// Step implements Optimizer.
func (s *SGD) Step(n *Network, lr float64) {
	if s.Momentum == 0 {
		for _, l := range n.layers {
			l.w.AddScaled(-lr, l.gw)
			mathx.AxpyTo(l.b, -lr, l.gb)
		}
		return
	}
	if !velocitiesFit(s.vel, n) {
		s.vel = make([]velocity, len(n.layers))
		for i, l := range n.layers {
			s.vel[i] = velocity{w: mathx.NewMatrix(l.w.Rows, l.w.Cols), b: make([]float64, len(l.b))}
		}
	}
	for i, l := range n.layers {
		v := s.vel[i]
		v.w.Scale(s.Momentum)
		v.w.AddScaled(-lr, l.gw)
		l.w.AddScaled(1, v.w)
		for j := range v.b {
			v.b[j] = s.Momentum*v.b[j] - lr*l.gb[j]
			l.b[j] += v.b[j]
		}
	}
}

// Adam implements the Adam optimizer (Kingma & Ba 2015) with the standard
// hyper-parameters; it is the default for LEAPME training, matching the
// Keras default the paper's implementation relied on.
type Adam struct {
	Beta1, Beta2, Eps float64
	t                 int
	m, v              []velocity
}

// NewAdam returns Adam with β1=0.9, β2=0.999, ε=1e-8.
func NewAdam() *Adam { return &Adam{Beta1: 0.9, Beta2: 0.999, Eps: 1e-8} }

// Name implements Optimizer.
func (a *Adam) Name() string { return "adam" }

// Reset implements Optimizer.
func (a *Adam) Reset() { a.t, a.m, a.v = 0, nil, nil }

// Step implements Optimizer.
func (a *Adam) Step(n *Network, lr float64) {
	if !velocitiesFit(a.m, n) {
		// First step, or the optimizer was (incorrectly) moved to a
		// network of a different shape: re-initialise rather than index
		// out of range.
		a.t = 0
		a.m = make([]velocity, len(n.layers))
		a.v = make([]velocity, len(n.layers))
		for i, l := range n.layers {
			a.m[i] = velocity{w: mathx.NewMatrix(l.w.Rows, l.w.Cols), b: make([]float64, len(l.b))}
			a.v[i] = velocity{w: mathx.NewMatrix(l.w.Rows, l.w.Cols), b: make([]float64, len(l.b))}
		}
	}
	a.t++
	c1 := 1 - math.Pow(a.Beta1, float64(a.t))
	c2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for i, l := range n.layers {
		m, v := a.m[i], a.v[i]
		for j, g := range l.gw.Data {
			m.w.Data[j] = a.Beta1*m.w.Data[j] + (1-a.Beta1)*g
			v.w.Data[j] = a.Beta2*v.w.Data[j] + (1-a.Beta2)*g*g
			l.w.Data[j] -= lr * (m.w.Data[j] / c1) / (math.Sqrt(v.w.Data[j]/c2) + a.Eps)
		}
		for j, g := range l.gb {
			m.b[j] = a.Beta1*m.b[j] + (1-a.Beta1)*g
			v.b[j] = a.Beta2*v.b[j] + (1-a.Beta2)*g*g
			l.b[j] -= lr * (m.b[j] / c1) / (math.Sqrt(v.b[j]/c2) + a.Eps)
		}
	}
}
