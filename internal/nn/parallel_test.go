package nn

import (
	"bytes"
	"context"
	"math"
	"testing"

	"leapme/internal/mathx"
)

// trainToy trains a fresh network on a small synthetic two-class problem
// with the given worker setting and returns the serialized weights.
func trainToy(t *testing.T, workers int) ([]byte, *Network) {
	t.Helper()
	const dim = 12
	rng := mathx.NewRand(99)
	var xs [][]float64
	var ys []int
	for i := 0; i < 200; i++ {
		x := make([]float64, dim)
		cls := i % 2
		for j := range x {
			x[j] = rng.NormFloat64()
			if cls == 1 {
				x[j] += 1.5
			}
		}
		xs = append(xs, x)
		ys = append(ys, cls)
	}
	n, err := New(Config{InDim: dim, Hidden: []int{16, 8}, Out: 2, Activation: ActReLU, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultTrainConfig(123)
	cfg.Schedule = []Phase{{Epochs: 4, LR: 1e-3}, {Epochs: 2, LR: 1e-4}}
	cfg.Workers = workers
	if _, err := n.Fit(context.Background(), xs, ys, cfg); err != nil {
		t.Fatalf("Fit(workers=%d): %v", workers, err)
	}
	var buf bytes.Buffer
	if _, err := n.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), n
}

// TestFitDeterminismAcrossWorkerCounts is the gate for the parallel
// trainer: any worker count ≥ 1 must produce bit-identical weights.
func TestFitDeterminismAcrossWorkerCounts(t *testing.T) {
	ref, refNet := trainToy(t, 1)
	for _, w := range []int{2, 3, 8} {
		got, gotNet := trainToy(t, w)
		if !bytes.Equal(ref, got) {
			t.Fatalf("workers=%d produced different weight bytes than workers=1", w)
		}
		// Scores too: bit-compare the positive-class probability.
		x := make([]float64, refNet.InDim())
		for i := range x {
			x[i] = float64(i) * 0.1
		}
		a, _ := refNet.Forward(x)
		b, _ := gotNet.Forward(x)
		if math.Float64bits(a[1]) != math.Float64bits(b[1]) {
			t.Fatalf("workers=%d: score %x, want %x", w, b[1], a[1])
		}
	}
}

// TestFitParallelConverges checks the chunked path actually learns, i.e.
// it is a correct gradient computation, not just a deterministic one.
func TestFitParallelConverges(t *testing.T) {
	_, n := trainToy(t, 4)
	// The two clusters are separated by +1.5 per dimension; a trained net
	// must classify their centroids correctly.
	neg := make([]float64, n.InDim())
	pos := make([]float64, n.InDim())
	for i := range pos {
		pos[i] = 1.5
	}
	pn, _ := n.Forward(neg)
	pp, _ := n.Forward(pos)
	if pn[0] < 0.5 {
		t.Errorf("negative centroid scored class0=%v, want > 0.5", pn[0])
	}
	if pp[1] < 0.5 {
		t.Errorf("positive centroid scored class1=%v, want > 0.5", pp[1])
	}
}

// TestFitParallelNearSerial: the chunked path regroups floating-point
// additions, so it is not bit-identical to the legacy Workers=0 loop —
// but it must agree to high precision.
func TestFitParallelNearSerial(t *testing.T) {
	legacy, ln := trainToy(t, 0)
	chunked, cn := trainToy(t, 1)
	_ = legacy
	_ = chunked
	x := make([]float64, ln.InDim())
	for i := range x {
		x[i] = 0.3
	}
	a, _ := ln.Forward(x)
	b, _ := cn.Forward(x)
	if math.Abs(a[1]-b[1]) > 1e-6 {
		t.Errorf("legacy vs chunked score drifted: %v vs %v", a[1], b[1])
	}
}

func TestFitParallelCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	n, err := New(Config{InDim: 4, Hidden: []int{4}, Out: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	xs := [][]float64{{1, 2, 3, 4}, {4, 3, 2, 1}}
	ys := []int{0, 1}
	cfg := DefaultTrainConfig(1)
	cfg.Workers = 4
	if _, err := n.Fit(ctx, xs, ys, cfg); err != context.Canceled {
		t.Errorf("Fit on cancelled ctx: err = %v, want context.Canceled", err)
	}
}
