package nn

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Binary model format: magic, layer count, then per layer
// (rows, cols, activation, weights row-major, biases), all little-endian.
const modelMagic = "LEAPMENN"

// WriteTo serialises the network's architecture and weights.
func (n *Network) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var written int64
	count := func(k int, err error) error {
		written += int64(k)
		return err
	}
	if err := count(bw.WriteString(modelMagic)); err != nil {
		return written, err
	}
	buf := make([]byte, 8)
	writeU32 := func(v uint32) error {
		binary.LittleEndian.PutUint32(buf[:4], v)
		return count(bw.Write(buf[:4]))
	}
	writeF64 := func(v float64) error {
		binary.LittleEndian.PutUint64(buf, math.Float64bits(v))
		return count(bw.Write(buf))
	}
	if err := writeU32(uint32(len(n.layers))); err != nil {
		return written, err
	}
	for _, l := range n.layers {
		if err := writeU32(uint32(l.w.Rows)); err != nil {
			return written, err
		}
		if err := writeU32(uint32(l.w.Cols)); err != nil {
			return written, err
		}
		if err := writeU32(uint32(l.act)); err != nil {
			return written, err
		}
		for _, x := range l.w.Data {
			if err := writeF64(x); err != nil {
				return written, err
			}
		}
		for _, x := range l.b {
			if err := writeF64(x); err != nil {
				return written, err
			}
		}
	}
	return written, bw.Flush()
}

// Read deserialises a network written by WriteTo.
func Read(r io.Reader) (*Network, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(modelMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("nn: reading magic: %w", err)
	}
	if string(magic) != modelMagic {
		return nil, fmt.Errorf("nn: bad magic %q", magic)
	}
	buf := make([]byte, 8)
	readU32 := func() (int, error) {
		if _, err := io.ReadFull(br, buf[:4]); err != nil {
			return 0, err
		}
		return int(binary.LittleEndian.Uint32(buf[:4])), nil
	}
	readF64 := func() (float64, error) {
		if _, err := io.ReadFull(br, buf); err != nil {
			return 0, err
		}
		return math.Float64frombits(binary.LittleEndian.Uint64(buf)), nil
	}
	nLayers, err := readU32()
	if err != nil {
		return nil, fmt.Errorf("nn: reading layer count: %w", err)
	}
	if nLayers <= 0 || nLayers > 1024 {
		return nil, fmt.Errorf("nn: implausible layer count %d", nLayers)
	}
	n := &Network{}
	for li := 0; li < nLayers; li++ {
		rows, err := readU32()
		if err != nil {
			return nil, fmt.Errorf("nn: layer %d rows: %w", li, err)
		}
		cols, err := readU32()
		if err != nil {
			return nil, fmt.Errorf("nn: layer %d cols: %w", li, err)
		}
		actI, err := readU32()
		if err != nil {
			return nil, fmt.Errorf("nn: layer %d activation: %w", li, err)
		}
		if rows <= 0 || cols <= 0 || rows > 1<<20 || cols > 1<<20 {
			return nil, fmt.Errorf("nn: implausible layer %d shape %dx%d", li, rows, cols)
		}
		if actI > int(ActIdentity) {
			return nil, fmt.Errorf("nn: unknown activation %d in layer %d", actI, li)
		}
		l := newLayer(cols, rows, Activation(actI), zeroRand{})
		for i := range l.w.Data {
			if l.w.Data[i], err = readF64(); err != nil {
				return nil, fmt.Errorf("nn: layer %d weights: %w", li, err)
			}
		}
		for i := range l.b {
			if l.b[i], err = readF64(); err != nil {
				return nil, fmt.Errorf("nn: layer %d biases: %w", li, err)
			}
		}
		if li == 0 {
			n.inDim = cols
		} else if prev := n.layers[li-1]; prev.w.Rows != cols {
			return nil, fmt.Errorf("nn: layer %d input dim %d does not match previous output %d", li, cols, prev.w.Rows)
		}
		n.layers = append(n.layers, l)
	}
	return n, nil
}

// zeroRand satisfies the initialiser interface with zeros; Read overwrites
// all weights anyway.
type zeroRand struct{}

func (zeroRand) Float64() float64 { return 0 }
