// Package nn implements the dense feed-forward neural network behind
// LEAPME's classifier: fully connected layers with ReLU activations, a
// softmax output with cross-entropy loss, mini-batch training with SGD,
// momentum or Adam, and the paper's staged learning-rate schedule (10
// epochs at 1e-3, 5 at 1e-4, 5 at 1e-5 with batch size 32). The network
// and its training loop are deterministic given a seed.
package nn

import (
	"errors"
	"fmt"
	"math"

	"leapme/internal/mathx"
)

// Activation selects a layer's non-linearity.
type Activation int

// Supported activations.
const (
	ActReLU Activation = iota
	ActSigmoid
	ActTanh
	ActIdentity // used internally by the softmax output layer
)

// String names the activation.
func (a Activation) String() string {
	switch a {
	case ActReLU:
		return "relu"
	case ActSigmoid:
		return "sigmoid"
	case ActTanh:
		return "tanh"
	case ActIdentity:
		return "identity"
	default:
		return "invalid"
	}
}

func (a Activation) apply(x float64) float64 {
	switch a {
	case ActReLU:
		if x > 0 {
			return x
		}
		return 0
	case ActSigmoid:
		return 1 / (1 + math.Exp(-x))
	case ActTanh:
		return math.Tanh(x)
	default:
		return x
	}
}

// derivFromOutput returns dσ/dx given σ(x) (all supported activations
// admit this form, avoiding a second stored buffer).
func (a Activation) derivFromOutput(y float64) float64 {
	switch a {
	case ActReLU:
		if y > 0 {
			return 1
		}
		return 0
	case ActSigmoid:
		return y * (1 - y)
	case ActTanh:
		return 1 - y*y
	default:
		return 1
	}
}

// layer is one dense layer: out = act(W·in + b).
type layer struct {
	w   *mathx.Matrix // out×in
	b   []float64
	act Activation

	// Training scratch, sized at construction.
	in    []float64 // last input
	out   []float64 // last activation output
	delta []float64 // dL/d(pre-activation)
	gw    *mathx.Matrix
	gb    []float64
}

func newLayer(inDim, outDim int, act Activation, rng interface{ Float64() float64 }) *layer {
	l := &layer{
		w:     mathx.NewMatrix(outDim, inDim),
		b:     make([]float64, outDim),
		act:   act,
		in:    make([]float64, inDim),
		out:   make([]float64, outDim),
		delta: make([]float64, outDim),
		gw:    mathx.NewMatrix(outDim, inDim),
		gb:    make([]float64, outDim),
	}
	// Glorot uniform init, as in Keras Dense defaults.
	limit := math.Sqrt(6 / float64(inDim+outDim))
	for i := range l.w.Data {
		l.w.Data[i] = (rng.Float64()*2 - 1) * limit
	}
	return l
}

// forward computes the layer output for x, retaining x and the output for
// a subsequent backward pass.
func (l *layer) forward(x []float64) []float64 {
	copy(l.in, x)
	l.w.MulVec(l.out, x)
	for i := range l.out {
		l.out[i] = l.act.apply(l.out[i] + l.b[i])
	}
	return l.out
}

// Network is a feed-forward neural network.
type Network struct {
	layers []*layer
	inDim  int
}

// Config describes a network topology.
type Config struct {
	// InDim is the input feature dimension.
	InDim int
	// Hidden lists hidden layer widths; the paper uses {128, 64}.
	Hidden []int
	// Out is the number of output classes; the paper uses 2 and reads the
	// positive-class probability as the similarity score.
	Out int
	// Activation is the hidden-layer non-linearity (default ReLU).
	Activation Activation
	// Seed drives weight initialisation.
	Seed int64
}

// PaperConfig returns the architecture of Section IV-D: hidden layers of
// 128 and 64 units and a 2-way softmax output.
func PaperConfig(inDim int, seed int64) Config {
	return Config{InDim: inDim, Hidden: []int{128, 64}, Out: 2, Activation: ActReLU, Seed: seed}
}

// New constructs a network.
func New(cfg Config) (*Network, error) {
	if cfg.InDim <= 0 {
		return nil, fmt.Errorf("nn: input dimension %d must be positive", cfg.InDim)
	}
	if cfg.Out <= 0 {
		return nil, fmt.Errorf("nn: output dimension %d must be positive", cfg.Out)
	}
	for i, h := range cfg.Hidden {
		if h <= 0 {
			return nil, fmt.Errorf("nn: hidden layer %d has non-positive width %d", i, h)
		}
	}
	rng := mathx.NewRand(cfg.Seed)
	n := &Network{inDim: cfg.InDim}
	prev := cfg.InDim
	for _, h := range cfg.Hidden {
		n.layers = append(n.layers, newLayer(prev, h, cfg.Activation, rng))
		prev = h
	}
	// Output layer: linear pre-activation; softmax applied by the loss.
	n.layers = append(n.layers, newLayer(prev, cfg.Out, ActIdentity, rng))
	return n, nil
}

// InDim returns the expected input dimension.
func (n *Network) InDim() int { return n.inDim }

// Clone returns a deep copy of the network: independent weights and —
// crucially — independent forward/backward scratch buffers, so the clone
// can run Forward concurrently with the original. A Network is not safe
// for concurrent use by itself (forward passes reuse per-layer scratch);
// concurrent scorers each take a clone.
func (n *Network) Clone() *Network {
	c := &Network{inDim: n.inDim}
	for _, l := range n.layers {
		nl := newLayer(l.w.Cols, l.w.Rows, l.act, zeroRand{})
		copy(nl.w.Data, l.w.Data)
		copy(nl.b, l.b)
		c.layers = append(c.layers, nl)
	}
	return c
}

// Hidden returns the hidden-layer widths (all layers but the output).
func (n *Network) Hidden() []int {
	out := make([]int, 0, len(n.layers)-1)
	for _, l := range n.layers[:len(n.layers)-1] {
		out = append(out, l.w.Rows)
	}
	return out
}

// OutDim returns the number of output classes.
func (n *Network) OutDim() int { return n.layers[len(n.layers)-1].w.Rows }

// Forward runs the network and returns the softmax class probabilities.
// The returned slice is owned by the caller.
func (n *Network) Forward(x []float64) ([]float64, error) {
	if len(x) != n.inDim {
		return nil, fmt.Errorf("nn: input has dim %d, want %d", len(x), n.inDim)
	}
	h := x
	for _, l := range n.layers {
		h = l.forward(h)
	}
	out := make([]float64, len(h))
	softmax(out, h)
	return out, nil
}

// PositiveScore runs the network on x and returns the probability of class
// 1 — LEAPME's similarity score for a property pair.
func (n *Network) PositiveScore(x []float64) (float64, error) {
	p, err := n.Forward(x)
	if err != nil {
		return 0, err
	}
	if len(p) < 2 {
		return 0, errors.New("nn: PositiveScore requires at least 2 output classes")
	}
	return p[1], nil
}

// Classify returns the argmax class for x.
func (n *Network) Classify(x []float64) (int, error) {
	p, err := n.Forward(x)
	if err != nil {
		return 0, err
	}
	return mathx.ArgMax(p), nil
}

// backward accumulates gradients for one example given the softmax
// probabilities and the true label, returning the cross-entropy loss.
// Forward must have been called on the same input immediately before.
func (n *Network) backward(probs []float64, label int) float64 {
	last := n.layers[len(n.layers)-1]
	// d(CE∘softmax)/dz = p - onehot(y); numerically exact and stable.
	for i := range last.delta {
		last.delta[i] = probs[i]
		if i == label {
			last.delta[i] -= 1
		}
	}
	// Propagate through hidden layers.
	for li := len(n.layers) - 1; li > 0; li-- {
		cur, prev := n.layers[li], n.layers[li-1]
		cur.gw.AddOuterTo(1, cur.delta, cur.in)
		mathx.AddTo(cur.gb, cur.gb, cur.delta)
		cur.w.MulVecT(prev.delta, cur.delta)
		for i := range prev.delta {
			prev.delta[i] *= prev.act.derivFromOutput(prev.out[i])
		}
	}
	first := n.layers[0]
	first.gw.AddOuterTo(1, first.delta, first.in)
	mathx.AddTo(first.gb, first.gb, first.delta)

	p := probs[label]
	if p < 1e-12 {
		p = 1e-12
	}
	return -math.Log(p)
}

// snapshot copies all trainable parameters — the in-memory checkpoint
// divergence recovery rolls back to. Layout: per layer, weights then
// biases, concatenated.
func (n *Network) snapshot() []float64 {
	size := 0
	for _, l := range n.layers {
		size += len(l.w.Data) + len(l.b)
	}
	snap := make([]float64, 0, size)
	for _, l := range n.layers {
		snap = append(snap, l.w.Data...)
		snap = append(snap, l.b...)
	}
	return snap
}

// restore writes a snapshot back into the network's parameters.
func (n *Network) restore(snap []float64) {
	for _, l := range n.layers {
		copy(l.w.Data, snap[:len(l.w.Data)])
		snap = snap[len(l.w.Data):]
		copy(l.b, snap[:len(l.b)])
		snap = snap[len(l.b):]
	}
}

// maxAbsParam returns the largest parameter magnitude, or NaN if any
// parameter is NaN — the exploding-weights detector. The explicit NaN
// check matters: NaN fails every > comparison, so a plain max would
// report a quiet 0 for a fully-NaN network.
func (n *Network) maxAbsParam() float64 {
	m := 0.0
	scan := func(xs []float64) bool {
		for _, v := range xs {
			if math.IsNaN(v) {
				return false
			}
			if a := math.Abs(v); a > m {
				m = a
			}
		}
		return true
	}
	for _, l := range n.layers {
		if !scan(l.w.Data) || !scan(l.b) {
			return math.NaN()
		}
	}
	return m
}

// zeroGrads clears accumulated gradients.
func (n *Network) zeroGrads() {
	for _, l := range n.layers {
		l.gw.Zero()
		mathx.Zero(l.gb)
	}
}

// scaleGrads divides accumulated gradients by k (mini-batch averaging).
func (n *Network) scaleGrads(k float64) {
	inv := 1 / k
	for _, l := range n.layers {
		l.gw.Scale(inv)
		mathx.ScaleTo(l.gb, l.gb, inv)
	}
}

// softmax writes a numerically stable softmax of z into dst.
func softmax(dst, z []float64) {
	m := z[0]
	for _, v := range z[1:] {
		if v > m {
			m = v
		}
	}
	var sum float64
	for i, v := range z {
		e := math.Exp(v - m)
		dst[i] = e
		sum += e
	}
	for i := range dst {
		dst[i] /= sum
	}
}
