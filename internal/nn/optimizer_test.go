package nn

import (
	"math"
	"testing"
)

// twoNets builds two identical networks with identical gradients so an
// optimizer comparison is apples to apples.
func twoNets(t *testing.T) (*Network, *Network) {
	t.Helper()
	mk := func() *Network {
		n, err := New(Config{InDim: 3, Hidden: []int{4}, Out: 2, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		// Populate gradients with a deterministic pattern.
		for li, l := range n.layers {
			for i := range l.gw.Data {
				l.gw.Data[i] = float64(li+1) * float64(i%7-3) * 0.01
			}
			for i := range l.gb {
				l.gb[i] = float64(li+1) * float64(i%5-2) * 0.01
			}
		}
		return n
	}
	return mk(), mk()
}

func weightsEqual(a, b *Network, tol float64) bool {
	for li := range a.layers {
		for i := range a.layers[li].w.Data {
			if math.Abs(a.layers[li].w.Data[i]-b.layers[li].w.Data[i]) > tol {
				return false
			}
		}
		for i := range a.layers[li].b {
			if math.Abs(a.layers[li].b[i]-b.layers[li].b[i]) > tol {
				return false
			}
		}
	}
	return true
}

func TestSGDZeroMomentumMatchesPlain(t *testing.T) {
	a, b := twoNets(t)
	NewSGD(0).Step(a, 0.1)
	// Momentum 0.0... the momentum branch with zero momentum equals plain
	// SGD after any number of steps; emulate via momentum≈0.
	NewSGD(1e-300).Step(b, 0.1)
	if !weightsEqual(a, b, 1e-12) {
		t.Error("SGD with ~zero momentum diverges from plain SGD")
	}
}

func TestSGDDescendsGradient(t *testing.T) {
	a, _ := twoNets(t)
	before := a.layers[0].w.At(0, 0)
	grad := a.layers[0].gw.At(0, 0)
	NewSGD(0).Step(a, 0.5)
	after := a.layers[0].w.At(0, 0)
	want := before - 0.5*grad
	if math.Abs(after-want) > 1e-12 {
		t.Errorf("SGD step: got %v, want %v", after, want)
	}
}

func TestMomentumAccumulates(t *testing.T) {
	_, b := twoNets(t)
	mom := NewSGD(0.9)
	w0 := initialWeight(t)
	// Two identical gradient steps: velocity builds, so the second
	// displacement is (1 + momentum) times the first.
	mom.Step(b, 0.1)
	w1 := b.layers[0].w.At(0, 0)
	mom.Step(b, 0.1)
	w2 := b.layers[0].w.At(0, 0)
	if g := b.layers[0].gw.At(0, 0); g == 0 {
		t.Skip("zero gradient at probe position")
	}
	d1, d2 := math.Abs(w1-w0), math.Abs(w2-w1)
	if d2 <= d1 {
		t.Errorf("momentum did not accelerate: first step %v, second %v", d1, d2)
	}
	if math.Abs(d2-1.9*d1) > 1e-9*d1 {
		t.Errorf("second step = %v, want 1.9× first step %v", d2, d1)
	}
}

func initialWeight(t *testing.T) float64 {
	t.Helper()
	n, err := New(Config{InDim: 3, Hidden: []int{4}, Out: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	return n.layers[0].w.At(0, 0)
}

func TestAdamBoundedSteps(t *testing.T) {
	a, _ := twoNets(t)
	before := make([]float64, len(a.layers[0].w.Data))
	copy(before, a.layers[0].w.Data)
	adam := NewAdam()
	adam.Step(a, 0.001)
	// Adam's per-parameter step is bounded by ~lr regardless of gradient
	// scale (bias-corrected first step has |Δ| ≈ lr).
	for i, w := range a.layers[0].w.Data {
		if d := math.Abs(w - before[i]); d > 0.0011 {
			t.Fatalf("Adam step %d too large: %v", i, d)
		}
	}
}

func TestAdamResetClearsState(t *testing.T) {
	a, _ := twoNets(t)
	adam := NewAdam()
	adam.Step(a, 0.001)
	adam.Reset()
	if adam.t != 0 || adam.m != nil {
		t.Error("Reset did not clear Adam state")
	}
}
