package nn

import (
	"context"
	"errors"
	"math"
	"strings"
	"testing"
	"time"
)

// TestFitRecoversFromDivergence injects divergence through an absurd
// phase learning rate: the first attempt explodes, the rollback restarts
// the phase from the checkpoint with LR·LRBackoff — a sane rate — and
// training still converges.
func TestFitRecoversFromDivergence(t *testing.T) {
	xs, ys := xorData(200, 6)
	n, _ := New(Config{InDim: 2, Hidden: []int{16, 8}, Out: 2, Seed: 6})
	type recovery struct {
		phase, retry int
		lr           float64
		reason       string
	}
	var recoveries []recovery
	cfg := TrainConfig{
		// 1e12 diverges within the first epoch; one backoff lands at
		// 5e-3, which learns XOR (cf. TestFitLearnsXOR).
		Schedule:  []Phase{{Epochs: 60, LR: 1e12}, {Epochs: 20, LR: 1e-3}},
		BatchSize: 32,
		Optimizer: NewAdam(),
		Seed:      6,
		LRBackoff: 5e-15,
		OnRecovery: func(phase, retry int, lr float64, reason string) {
			recoveries = append(recoveries, recovery{phase, retry, lr, reason})
		},
	}
	loss, err := n.Fit(context.Background(), xs, ys, cfg)
	if err != nil {
		t.Fatalf("Fit did not recover: %v", err)
	}
	if len(recoveries) == 0 {
		t.Fatal("no recovery recorded despite LR 1e12")
	}
	r := recoveries[0]
	if r.phase != 0 || r.retry != 1 {
		t.Errorf("first recovery = phase %d retry %d, want phase 0 retry 1", r.phase, r.retry)
	}
	if r.lr >= 1e12 {
		t.Errorf("recovery did not back off the LR: %v", r.lr)
	}
	if !strings.Contains(r.reason, "loss") && !strings.Contains(r.reason, "exploding") {
		t.Errorf("unrecognised divergence reason %q", r.reason)
	}
	if math.IsNaN(loss) || math.IsInf(loss, 0) {
		t.Fatalf("recovered training ended with non-finite loss %v", loss)
	}
	correct := 0
	for i, x := range xs {
		c, _ := n.Classify(x)
		if c == ys[i] {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(xs)); acc < 0.9 {
		t.Errorf("post-recovery XOR accuracy = %v, want ≥ 0.9", acc)
	}
}

// TestFitDivergenceBudget exhausts the retry budget: a backoff factor
// close to 1 keeps the LR absurd on every retry, so Fit must give up
// with ErrDiverged instead of looping.
func TestFitDivergenceBudget(t *testing.T) {
	xs, ys := xorData(60, 7)
	n, _ := New(Config{InDim: 2, Hidden: []int{8}, Out: 2, Seed: 7})
	cfg := TrainConfig{
		Schedule:        []Phase{{Epochs: 5, LR: 1e12}},
		BatchSize:       16,
		Optimizer:       NewAdam(),
		Seed:            7,
		LRBackoff:       0.9,
		MaxPhaseRetries: 2,
	}
	retries := 0
	cfg.OnRecovery = func(phase, retry int, lr float64, reason string) { retries++ }
	_, err := n.Fit(context.Background(), xs, ys, cfg)
	if !errors.Is(err, ErrDiverged) {
		t.Fatalf("err = %v, want ErrDiverged", err)
	}
	if retries != cfg.MaxPhaseRetries {
		t.Errorf("observed %d recoveries before giving up, want %d", retries, cfg.MaxPhaseRetries)
	}
	// The network must be left at the phase checkpoint, not the exploded
	// state: all parameters finite and of sane magnitude.
	if m := n.maxAbsParam(); math.IsNaN(m) || m > 1e3 {
		t.Errorf("network left with max |param| = %v after ErrDiverged rollback", m)
	}
}

// TestFitRejectsNonFiniteFeatures: non-finite inputs are an input error
// reported up front, not something the divergence detector should have
// to chase after the fact.
func TestFitRejectsNonFiniteFeatures(t *testing.T) {
	n, _ := New(Config{InDim: 2, Out: 2, Seed: 1})
	for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		if _, err := n.Fit(context.Background(), [][]float64{{1, bad}}, []int{0}, DefaultTrainConfig(1)); err == nil {
			t.Errorf("non-finite feature %v accepted", bad)
		}
	}
}

// TestFitCancellation: a cancelled context stops training between
// mini-batches and surfaces ctx.Err().
func TestFitCancellation(t *testing.T) {
	xs, ys := xorData(200, 8)
	n, _ := New(Config{InDim: 2, Hidden: []int{16, 8}, Out: 2, Seed: 8})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := n.Fit(ctx, xs, ys, DefaultTrainConfig(8)); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}

	ctx2, cancel2 := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel2()
	cfg := DefaultTrainConfig(8)
	cfg.Schedule = []Phase{{Epochs: 100000, LR: 1e-3}}
	start := time.Now()
	_, err := n.Fit(ctx2, xs, ys, cfg)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("deadline honoured only after %v", elapsed)
	}
}

// TestSnapshotRestoreRoundTrip pins the checkpoint mechanics the
// divergence recovery depends on.
func TestSnapshotRestoreRoundTrip(t *testing.T) {
	n, _ := New(Config{InDim: 3, Hidden: []int{4}, Out: 2, Seed: 9})
	snap := n.snapshot()
	before, _ := n.Forward([]float64{1, 2, 3})

	// Perturb every parameter, then restore.
	xs, ys := [][]float64{{1, 0, 0}, {0, 1, 0}}, []int{0, 1}
	cfg := DefaultTrainConfig(9)
	cfg.Schedule = []Phase{{Epochs: 3, LR: 0.1}}
	if _, err := n.Fit(context.Background(), xs, ys, cfg); err != nil {
		t.Fatal(err)
	}
	changed, _ := n.Forward([]float64{1, 2, 3})
	same := true
	for i := range before {
		if before[i] != changed[i] {
			same = false
		}
	}
	if same {
		t.Fatal("training did not change the network; restore test is vacuous")
	}

	n.restore(snap)
	after, _ := n.Forward([]float64{1, 2, 3})
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("restore did not reproduce snapshot: %v vs %v", before, after)
		}
	}
}
