package nn

import (
	"context"
	"errors"
	"fmt"
	"math"

	"leapme/internal/mathx"
	"leapme/internal/parallel"
)

// Phase is one stage of the learning-rate schedule.
type Phase struct {
	Epochs int
	LR     float64
}

// ErrDiverged reports that training kept producing non-finite losses or
// exploding weights after exhausting the per-phase retry budget.
var ErrDiverged = errors.New("nn: training diverged")

// TrainConfig controls Fit.
type TrainConfig struct {
	// Schedule is the staged learning-rate plan. The paper's schedule is
	// 10 epochs at 1e-3, then 5 at 1e-4, then 5 at 1e-5.
	Schedule []Phase
	// BatchSize is the mini-batch size (paper: 32).
	BatchSize int
	// Optimizer defaults to Adam when nil.
	Optimizer Optimizer
	// WeightDecay applies decoupled L2 weight decay (AdamW-style) after
	// each optimizer step: w ← w·(1 − lr·WeightDecay). The paper's
	// configuration has none; the option exists for the regularisation
	// ablation.
	WeightDecay float64
	// Seed drives batch shuffling.
	Seed int64
	// OnEpoch, if non-nil, receives (epochIndex, meanLoss) after each
	// epoch — useful for logging and learning curves.
	OnEpoch func(epoch int, loss float64)
	// Workers selects the gradient computation path. 0 (the default) is
	// the legacy serial loop, preserved bit-for-bit so historical seeds
	// keep reproducing. Any value ≥ 1 switches to the deterministic
	// chunked path (see parallel.go), whose results are bit-identical
	// across ALL worker counts — Workers=1 and Workers=8 train the exact
	// same network. Negative means one worker per CPU.
	Workers int

	// MaxPhaseRetries bounds divergence recoveries per schedule phase
	// (default 3). When an epoch produces a non-finite loss or the
	// parameters exceed ExplodeThreshold, the network rolls back to the
	// snapshot taken at the start of the phase, the optimizer state is
	// reset, and the phase restarts with LR scaled by LRBackoff. Beyond
	// the budget Fit fails with ErrDiverged.
	MaxPhaseRetries int
	// LRBackoff scales the phase learning rate on each recovery
	// (default 0.1). Values outside (0, 1) fall back to the default.
	LRBackoff float64
	// ExplodeThreshold is the parameter magnitude treated as divergence
	// (default 1e8). Healthy training of standardized features keeps
	// weights within single digits; 1e8 only trips on a genuine runaway.
	ExplodeThreshold float64
	// OnRecovery, if non-nil, observes each rollback: the phase index,
	// the retry number within the phase (1-based), the backed-off LR the
	// phase restarts with, and what tripped the detector.
	OnRecovery func(phase, retry int, lr float64, reason string)
}

// PaperSchedule returns the LR schedule of Section IV-D.
func PaperSchedule() []Phase {
	return []Phase{{Epochs: 10, LR: 1e-3}, {Epochs: 5, LR: 1e-4}, {Epochs: 5, LR: 1e-5}}
}

// DefaultTrainConfig returns the paper's training hyper-parameters.
func DefaultTrainConfig(seed int64) TrainConfig {
	return TrainConfig{Schedule: PaperSchedule(), BatchSize: 32, Optimizer: NewAdam(), Seed: seed}
}

// Fit trains the network on (xs, ys) with mini-batch gradient descent.
// ys[i] is the class index of xs[i]. It returns the mean loss of the final
// epoch.
//
// Fit is cancellable: ctx is checked between mini-batches and a done
// context aborts with ctx.Err(), leaving the network in its
// last-completed-batch state. A nil ctx behaves like context.Background().
// Divergence (non-finite loss, exploding weights) triggers checkpoint
// rollback with a backed-off learning rate; see TrainConfig.
func (n *Network) Fit(ctx context.Context, xs [][]float64, ys []int, cfg TrainConfig) (float64, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if len(xs) == 0 {
		return 0, errors.New("nn: Fit with no training examples")
	}
	if len(xs) != len(ys) {
		return 0, fmt.Errorf("nn: %d inputs but %d labels", len(xs), len(ys))
	}
	out := n.OutDim()
	for i, x := range xs {
		if len(x) != n.inDim {
			return 0, fmt.Errorf("nn: example %d has dim %d, want %d", i, len(x), n.inDim)
		}
		for j, v := range x {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return 0, fmt.Errorf("nn: example %d has non-finite feature %d (%v)", i, j, v)
			}
		}
		if ys[i] < 0 || ys[i] >= out {
			return 0, fmt.Errorf("nn: label %d of example %d outside [0, %d)", ys[i], i, out)
		}
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 32
	}
	if cfg.Optimizer == nil {
		cfg.Optimizer = NewAdam()
	}
	if len(cfg.Schedule) == 0 {
		cfg.Schedule = PaperSchedule()
	}
	if cfg.MaxPhaseRetries <= 0 {
		cfg.MaxPhaseRetries = 3
	}
	if cfg.LRBackoff <= 0 || cfg.LRBackoff >= 1 {
		cfg.LRBackoff = 0.1
	}
	if cfg.ExplodeThreshold <= 0 {
		cfg.ExplodeThreshold = 1e8
	}

	rng := mathx.NewRand(cfg.Seed)
	order := make([]int, len(xs))
	for i := range order {
		order[i] = i
	}
	probs := make([]float64, out)
	workers := 0
	if cfg.Workers != 0 {
		workers = parallel.Resolve(cfg.Workers)
	}
	var pt *parTrainer
	if workers > 0 {
		pt = newParTrainer(n, workers, cfg.BatchSize)
	}

	var lastLoss float64
	epoch := 0
	for pi, phase := range cfg.Schedule {
		lr := phase.LR
		// The rollback checkpoint: parameters as of the start of the
		// phase, i.e. the last state every earlier phase signed off on.
		snap := n.snapshot()
		retries := 0
		for e := 0; e < phase.Epochs; e++ {
			mathx.Shuffle(order, rng)
			var epochLoss float64
			for start := 0; start < len(order); start += cfg.BatchSize {
				if err := ctx.Err(); err != nil {
					return lastLoss, err
				}
				end := start + cfg.BatchSize
				if end > len(order) {
					end = len(order)
				}
				n.zeroGrads()
				if pt != nil {
					epochLoss += pt.batchGrads(xs, ys, order[start:end])
				} else {
					for _, idx := range order[start:end] {
						h := xs[idx]
						for _, l := range n.layers {
							h = l.forward(h)
						}
						softmax(probs, h)
						epochLoss += n.backward(probs, ys[idx])
					}
				}
				n.scaleGrads(float64(end - start))
				cfg.Optimizer.Step(n, lr)
				if cfg.WeightDecay > 0 {
					shrink := 1 - lr*cfg.WeightDecay
					for _, l := range n.layers {
						l.w.Scale(shrink) // biases are conventionally not decayed
					}
				}
				if math.IsNaN(epochLoss) || math.IsInf(epochLoss, 0) {
					break // mid-epoch divergence: no point finishing the epoch
				}
			}

			reason := ""
			if math.IsNaN(epochLoss) || math.IsInf(epochLoss, 0) {
				reason = "non-finite loss"
			} else if m := n.maxAbsParam(); math.IsNaN(m) || m > cfg.ExplodeThreshold {
				reason = fmt.Sprintf("exploding weights (max |w| = %g)", m)
			}
			if reason != "" {
				retries++
				if retries > cfg.MaxPhaseRetries {
					n.restore(snap)
					return lastLoss, fmt.Errorf("%w: phase %d: %s after %d recovery attempts",
						ErrDiverged, pi, reason, cfg.MaxPhaseRetries)
				}
				n.restore(snap)
				cfg.Optimizer.Reset() // stale moments would re-poison the restored weights
				lr *= cfg.LRBackoff
				if cfg.OnRecovery != nil {
					cfg.OnRecovery(pi, retries, lr, reason)
				}
				e = -1 // restart the phase from the checkpoint
				continue
			}

			lastLoss = epochLoss / float64(len(xs))
			if cfg.OnEpoch != nil {
				cfg.OnEpoch(epoch, lastLoss)
			}
			epoch++
		}
	}
	return lastLoss, nil
}
