package nn

import (
	"errors"
	"fmt"

	"leapme/internal/mathx"
)

// Phase is one stage of the learning-rate schedule.
type Phase struct {
	Epochs int
	LR     float64
}

// TrainConfig controls Fit.
type TrainConfig struct {
	// Schedule is the staged learning-rate plan. The paper's schedule is
	// 10 epochs at 1e-3, then 5 at 1e-4, then 5 at 1e-5.
	Schedule []Phase
	// BatchSize is the mini-batch size (paper: 32).
	BatchSize int
	// Optimizer defaults to Adam when nil.
	Optimizer Optimizer
	// WeightDecay applies decoupled L2 weight decay (AdamW-style) after
	// each optimizer step: w ← w·(1 − lr·WeightDecay). The paper's
	// configuration has none; the option exists for the regularisation
	// ablation.
	WeightDecay float64
	// Seed drives batch shuffling.
	Seed int64
	// OnEpoch, if non-nil, receives (epochIndex, meanLoss) after each
	// epoch — useful for logging and learning curves.
	OnEpoch func(epoch int, loss float64)
}

// PaperSchedule returns the LR schedule of Section IV-D.
func PaperSchedule() []Phase {
	return []Phase{{Epochs: 10, LR: 1e-3}, {Epochs: 5, LR: 1e-4}, {Epochs: 5, LR: 1e-5}}
}

// DefaultTrainConfig returns the paper's training hyper-parameters.
func DefaultTrainConfig(seed int64) TrainConfig {
	return TrainConfig{Schedule: PaperSchedule(), BatchSize: 32, Optimizer: NewAdam(), Seed: seed}
}

// Fit trains the network on (xs, ys) with mini-batch gradient descent.
// ys[i] is the class index of xs[i]. It returns the mean loss of the final
// epoch.
func (n *Network) Fit(xs [][]float64, ys []int, cfg TrainConfig) (float64, error) {
	if len(xs) == 0 {
		return 0, errors.New("nn: Fit with no training examples")
	}
	if len(xs) != len(ys) {
		return 0, fmt.Errorf("nn: %d inputs but %d labels", len(xs), len(ys))
	}
	out := n.OutDim()
	for i, x := range xs {
		if len(x) != n.inDim {
			return 0, fmt.Errorf("nn: example %d has dim %d, want %d", i, len(x), n.inDim)
		}
		if ys[i] < 0 || ys[i] >= out {
			return 0, fmt.Errorf("nn: label %d of example %d outside [0, %d)", ys[i], i, out)
		}
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 32
	}
	if cfg.Optimizer == nil {
		cfg.Optimizer = NewAdam()
	}
	if len(cfg.Schedule) == 0 {
		cfg.Schedule = PaperSchedule()
	}

	rng := mathx.NewRand(cfg.Seed)
	order := make([]int, len(xs))
	for i := range order {
		order[i] = i
	}
	probs := make([]float64, out)

	var lastLoss float64
	epoch := 0
	for _, phase := range cfg.Schedule {
		for e := 0; e < phase.Epochs; e++ {
			mathx.Shuffle(order, rng)
			var epochLoss float64
			for start := 0; start < len(order); start += cfg.BatchSize {
				end := start + cfg.BatchSize
				if end > len(order) {
					end = len(order)
				}
				n.zeroGrads()
				for _, idx := range order[start:end] {
					h := xs[idx]
					for _, l := range n.layers {
						h = l.forward(h)
					}
					softmax(probs, h)
					epochLoss += n.backward(probs, ys[idx])
				}
				n.scaleGrads(float64(end - start))
				cfg.Optimizer.Step(n, phase.LR)
				if cfg.WeightDecay > 0 {
					shrink := 1 - phase.LR*cfg.WeightDecay
					for _, l := range n.layers {
						l.w.Scale(shrink) // biases are conventionally not decayed
					}
				}
			}
			lastLoss = epochLoss / float64(len(xs))
			if cfg.OnEpoch != nil {
				cfg.OnEpoch(epoch, lastLoss)
			}
			epoch++
		}
	}
	return lastLoss, nil
}
