package nn

import (
	"math"
	"math/rand"
	"testing"

	"leapme/internal/mathx"
)

// simdVals fills a slice with values that stress rounding and sign
// handling: mixed magnitudes, exact negatives, and signed zeros.
func simdVals(rng *rand.Rand, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		switch rng.Intn(8) {
		case 0:
			out[i] = 0
		case 1:
			out[i] = math.Copysign(0, -1)
		case 2:
			out[i] = rng.Float64() * 1e-8
		default:
			out[i] = rng.NormFloat64()
		}
	}
	return out
}

func bitsEqual(t *testing.T, name string, got, want []float64) {
	t.Helper()
	for i := range want {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("%s[%d]: got %x (%g), want %x (%g)",
				name, i, math.Float64bits(got[i]), got[i],
				math.Float64bits(want[i]), want[i])
		}
	}
}

// TestSIMDKernelsBitDeterminism pins the AVX kernels to the generic
// Go reference semantics bit for bit, across awkward lengths (SIMD
// tails) and sign-of-zero cases. On machines without AVX the asm and
// generic paths are the same code and the test is a tautology.
func TestSIMDKernelsBitDeterminism(t *testing.T) {
	if !useAVX {
		t.Skip("no AVX: generic path is the only path")
	}
	rng := mathx.NewRand(11)
	for _, cols := range []int{1, 2, 3, 5, 16, 33, 101, 128} {
		x := simdVals(rng, cols*gradChunkSize)
		w := simdVals(rng, 2*cols)

		var accAsm, accGen [gradChunkSize]float64
		fwdrow8AVX(&x[0], &w[0], cols, &accAsm[0])
		fwdrow8Generic(&accGen, x, w[:cols])
		bitsEqual(t, "fwdrow8", accAsm[:], accGen[:])

		var acc2Asm, acc2Gen [2 * gradChunkSize]float64
		fwd2row8AVX(&x[0], &w[0], cols, &acc2Asm[0])
		fwd2row8Generic(&acc2Gen, x, w)
		bitsEqual(t, "fwd2row8", acc2Asm[:], acc2Gen[:])

		d := simdVals(rng, gradChunkSize)
		dpAsm := simdVals(rng, cols*gradChunkSize)
		dpGen := append([]float64(nil), dpAsm...)
		bwdrow8AVX(&d[0], &w[0], &dpAsm[0], cols)
		bwdrow8Generic(d, w[:cols], dpGen)
		bitsEqual(t, "bwdrow8", dpAsm, dpGen)

		a := rng.NormFloat64()
		dstAsm := simdVals(rng, cols)
		dstGen := append([]float64(nil), dstAsm...)
		axpySetAVX(&dstAsm[0], &x[0], cols, a)
		axpySetGeneric(dstGen, x, a)
		bitsEqual(t, "axpySet", dstAsm, dstGen)

		axpyAddAVX(&dstAsm[0], &x[0], cols, a)
		axpyAddGeneric(dstGen, x, a)
		bitsEqual(t, "axpyAdd", dstAsm, dstGen)
	}
}

// TestSIMDAdamStepBitDeterminism pins the vectorised Adam update —
// divides and square root included — to the scalar reference.
func TestSIMDAdamStepBitDeterminism(t *testing.T) {
	if !useAVX {
		t.Skip("no AVX: generic path is the only path")
	}
	rng := mathx.NewRand(7)
	b1, b2, eps, lr := 0.9, 0.999, 1e-8, 1e-3
	for _, n := range []int{1, 2, 3, 4, 7, 64, 101} {
		for step := 1; step <= 3; step++ {
			c1 := 1 - math.Pow(b1, float64(step))
			c2 := 1 - math.Pow(b2, float64(step))
			g := simdVals(rng, n)
			wAsm := simdVals(rng, n)
			mwAsm := simdVals(rng, n)
			vwAsm := make([]float64, n)
			for i := range vwAsm {
				vwAsm[i] = rng.Float64() // v must stay ≥ 0 like a real second moment
			}
			wGen := append([]float64(nil), wAsm...)
			mwGen := append([]float64(nil), mwAsm...)
			vwGen := append([]float64(nil), vwAsm...)
			adamStepAVX(&wAsm[0], &g[0], &mwAsm[0], &vwAsm[0], n, b1, b2, 1-b1, 1-b2, c1, c2, eps, lr)
			adamStepGeneric(wGen, g, mwGen, vwGen, b1, b2, c1, c2, eps, lr)
			bitsEqual(t, "adam w", wAsm, wGen)
			bitsEqual(t, "adam m", mwAsm, mwGen)
			bitsEqual(t, "adam v", vwAsm, vwGen)
		}
	}
}
