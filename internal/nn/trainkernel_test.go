package nn

import (
	"bytes"
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"
)

// tkDataset builds a deterministic synthetic training set both as row
// slices (for Network.Fit) and as a flat slab (for TrainKernel.Fit).
func tkDataset(n, dim, classes int, seed int64) ([][]float64, []float64, []int) {
	rng := rand.New(rand.NewSource(seed))
	rows := make([][]float64, n)
	flat := make([]float64, n*dim)
	ys := make([]int, n)
	for i := 0; i < n; i++ {
		row := flat[i*dim : (i+1)*dim]
		for j := range row {
			row[j] = rng.NormFloat64()
		}
		// Make the labels weakly learnable so losses stay finite and
		// training actually moves the weights.
		if row[0]+0.3*row[dim-1] > 0 {
			ys[i] = 1
		} else {
			ys[i] = i % classes
		}
		rows[i] = row
	}
	return rows, flat, ys
}

func mustNet(t *testing.T, cfg Config) *Network {
	t.Helper()
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func netBytes(t *testing.T, n *Network) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := n.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func tkSchedule() []Phase {
	return []Phase{{Epochs: 3, LR: 1e-3}, {Epochs: 2, LR: 1e-4}}
}

// trainLegacy trains a fresh network through the chunked Network.Fit
// path and returns its serialized bytes plus the final loss.
func trainLegacy(t *testing.T, cfg Config, tc TrainConfig, rows [][]float64, ys []int) ([]byte, float64) {
	t.Helper()
	net := mustNet(t, cfg)
	loss, err := net.Fit(context.Background(), rows, ys, tc)
	if err != nil {
		t.Fatalf("legacy Fit: %v", err)
	}
	return netBytes(t, net), loss
}

// trainKernel trains a fresh network through TrainKernel.Fit and returns
// its serialized bytes plus the final loss.
func trainKernel(t *testing.T, cfg Config, tc TrainConfig, flat []float64, ys []int) ([]byte, float64) {
	t.Helper()
	net := mustNet(t, cfg)
	k, err := NewTrainKernel(net, tc)
	if err != nil {
		t.Fatal(err)
	}
	loss, err := k.Fit(context.Background(), flat, ys)
	if err != nil {
		t.Fatalf("kernel Fit: %v", err)
	}
	return netBytes(t, net), loss
}

// TestTrainKernelMatchesChunkedFit pins the tentpole contract: for every
// worker count, TrainKernel trains byte-identical weights to the chunked
// (Workers ≥ 1) Network.Fit path, across topologies, activations,
// optimizers, and weight decay.
func TestTrainKernelMatchesChunkedFit(t *testing.T) {
	rows, flat, ys := tkDataset(173, 13, 3, 41)

	cases := []struct {
		name string
		cfg  Config
		tc   TrainConfig
	}{
		{
			name: "relu-adam",
			cfg:  Config{InDim: 13, Hidden: []int{16, 8}, Out: 3, Activation: ActReLU, Seed: 7},
			tc:   TrainConfig{Schedule: tkSchedule(), BatchSize: 32, Seed: 11},
		},
		{
			name: "sigmoid-adam-decay",
			cfg:  Config{InDim: 13, Hidden: []int{10}, Out: 3, Activation: ActSigmoid, Seed: 9},
			tc:   TrainConfig{Schedule: tkSchedule(), BatchSize: 16, Seed: 5, WeightDecay: 1e-4},
		},
		{
			name: "tanh-sgd-momentum",
			cfg:  Config{InDim: 13, Hidden: []int{12}, Out: 3, Activation: ActTanh, Seed: 3},
			tc:   TrainConfig{Schedule: tkSchedule(), BatchSize: 24, Seed: 2},
		},
		{
			name: "no-hidden-sgd",
			cfg:  Config{InDim: 13, Out: 3, Activation: ActReLU, Seed: 1},
			tc:   TrainConfig{Schedule: []Phase{{Epochs: 4, LR: 1e-2}}, BatchSize: 32, Seed: 8},
		},
		{
			name: "uneven-batch",
			cfg:  Config{InDim: 13, Hidden: []int{8}, Out: 3, Activation: ActReLU, Seed: 4},
			tc:   TrainConfig{Schedule: tkSchedule(), BatchSize: 19, Seed: 6},
		},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			refTC := tt.tc
			refTC.Workers = 1
			switch tt.name {
			case "tanh-sgd-momentum":
				refTC.Optimizer = &SGD{Momentum: 0.9}
			case "no-hidden-sgd":
				refTC.Optimizer = &SGD{}
			}
			ref, refLoss := trainLegacy(t, tt.cfg, refTC, rows, ys)
			for _, w := range []int{1, 2, 3, 8} {
				kTC := refTC
				kTC.Workers = w
				switch tt.name {
				case "tanh-sgd-momentum":
					kTC.Optimizer = &SGD{Momentum: 0.9}
				case "no-hidden-sgd":
					kTC.Optimizer = &SGD{}
				default:
					kTC.Optimizer = nil // fresh Adam per run
				}
				got, gotLoss := trainKernel(t, tt.cfg, kTC, flat, ys)
				if !bytes.Equal(got, ref) {
					t.Fatalf("workers=%d: kernel-trained model bytes differ from chunked Fit", w)
				}
				if math.Float64bits(gotLoss) != math.Float64bits(refLoss) {
					t.Fatalf("workers=%d: final loss %x, want %x", w,
						math.Float64bits(gotLoss), math.Float64bits(refLoss))
				}
			}
		})
	}
}

// TestTrainKernelDeterminismAcrossWorkerCounts is the determinism gate:
// kernel training is worker-count independent down to the byte.
func TestTrainKernelDeterminismAcrossWorkerCounts(t *testing.T) {
	_, flat, ys := tkDataset(151, 9, 2, 17)
	cfg := Config{InDim: 9, Hidden: []int{16, 8}, Out: 2, Activation: ActReLU, Seed: 12}
	base := TrainConfig{Schedule: tkSchedule(), BatchSize: 32, Seed: 3}

	mk := func(w int) []byte {
		tc := base
		tc.Workers = w
		b, _ := trainKernel(t, cfg, tc, flat, ys)
		return b
	}
	ref := mk(1)
	for _, w := range []int{2, 4, 8, -1} {
		if !bytes.Equal(mk(w), ref) {
			t.Fatalf("workers=%d: trained model bytes differ from workers=1", w)
		}
	}
}

// TestTrainKernelDivergenceRecoveryMatchesFit pins the rollback path: an
// absurdly low explode threshold forces phase retries through to the
// ErrDiverged exit, and the kernel must restore and fail exactly as the
// chunked Fit does.
func TestTrainKernelDivergenceRecoveryMatchesFit(t *testing.T) {
	rows, flat, ys := tkDataset(64, 7, 2, 23)
	cfg := Config{InDim: 7, Hidden: []int{8}, Out: 2, Activation: ActReLU, Seed: 2}
	tc := TrainConfig{
		Schedule:         []Phase{{Epochs: 3, LR: 1e-3}},
		BatchSize:        16,
		Seed:             9,
		Workers:          1,
		MaxPhaseRetries:  2,
		ExplodeThreshold: 1e-3, // trips immediately: initial weights exceed it
	}

	refNet := mustNet(t, cfg)
	var refRecov []string
	refTC := tc
	refTC.OnRecovery = func(phase, retry int, lr float64, reason string) {
		refRecov = append(refRecov, reason)
	}
	_, refErr := refNet.Fit(context.Background(), rows, ys, refTC)
	if !errors.Is(refErr, ErrDiverged) {
		t.Fatalf("legacy Fit err = %v, want ErrDiverged", refErr)
	}

	kNet := mustNet(t, cfg)
	var kRecov []string
	kTC := tc
	kTC.OnRecovery = func(phase, retry int, lr float64, reason string) {
		kRecov = append(kRecov, reason)
	}
	k, err := NewTrainKernel(kNet, kTC)
	if err != nil {
		t.Fatal(err)
	}
	_, kErr := k.Fit(context.Background(), flat, ys)
	if !errors.Is(kErr, ErrDiverged) {
		t.Fatalf("kernel Fit err = %v, want ErrDiverged", kErr)
	}
	if kErr.Error() != refErr.Error() {
		t.Fatalf("error text diverges:\nkernel: %s\nlegacy: %s", kErr, refErr)
	}
	if len(kRecov) != len(refRecov) {
		t.Fatalf("recovery counts differ: %d vs %d", len(kRecov), len(refRecov))
	}
	for i := range kRecov {
		if kRecov[i] != refRecov[i] {
			t.Fatalf("recovery %d reason %q, want %q", i, kRecov[i], refRecov[i])
		}
	}
	if !bytes.Equal(netBytes(t, kNet), netBytes(t, refNet)) {
		t.Fatal("restored weights differ after divergence failure")
	}
}

// TestTrainKernelCancellationWritesBack: a deterministic mid-training
// cancel must leave the kernel-trained network byte-identical to the
// chunked Fit cancelled at the same point.
func TestTrainKernelCancellationWritesBack(t *testing.T) {
	rows, flat, ys := tkDataset(96, 7, 2, 31)
	cfg := Config{InDim: 7, Hidden: []int{8}, Out: 2, Activation: ActReLU, Seed: 6}
	mkTC := func(cancel context.CancelFunc) TrainConfig {
		return TrainConfig{
			Schedule:  []Phase{{Epochs: 10, LR: 1e-3}},
			BatchSize: 32,
			Seed:      4,
			Workers:   2,
			OnEpoch: func(epoch int, loss float64) {
				if epoch == 2 {
					cancel()
				}
			},
		}
	}

	refCtx, refCancel := context.WithCancel(context.Background())
	defer refCancel()
	refNet := mustNet(t, cfg)
	_, refErr := refNet.Fit(refCtx, rows, ys, mkTC(refCancel))
	if !errors.Is(refErr, context.Canceled) {
		t.Fatalf("legacy Fit err = %v, want context.Canceled", refErr)
	}

	kCtx, kCancel := context.WithCancel(context.Background())
	defer kCancel()
	kNet := mustNet(t, cfg)
	k, err := NewTrainKernel(kNet, mkTC(kCancel))
	if err != nil {
		t.Fatal(err)
	}
	_, kErr := k.Fit(kCtx, flat, ys)
	if !errors.Is(kErr, context.Canceled) {
		t.Fatalf("kernel Fit err = %v, want context.Canceled", kErr)
	}
	if !bytes.Equal(netBytes(t, kNet), netBytes(t, refNet)) {
		t.Fatal("cancelled kernel weights differ from cancelled chunked Fit")
	}
}

func TestNewTrainKernelRejectsStaleOptimizer(t *testing.T) {
	cfg := Config{InDim: 4, Hidden: []int{4}, Out: 2, Activation: ActReLU, Seed: 1}
	_, flat, ys := tkDataset(16, 4, 2, 1)

	adam := NewAdam()
	net := mustNet(t, cfg)
	k, err := NewTrainKernel(net, TrainConfig{Schedule: []Phase{{Epochs: 1, LR: 1e-3}}, Optimizer: adam, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := k.Fit(context.Background(), flat, ys); err != nil {
		t.Fatal(err)
	}
	// The Adam instance itself was never stepped — the kernel keeps its
	// own flat state — so reuse is still legal; only a genuinely stepped
	// optimizer is rejected.
	stepped := NewAdam()
	stepped.t = 3
	if _, err := NewTrainKernel(mustNet(t, cfg), TrainConfig{Optimizer: stepped}); err == nil {
		t.Fatal("expected error for stepped Adam")
	}
	sgd := &SGD{Momentum: 0.9}
	sgd.vel = make([]velocity, 1)
	if _, err := NewTrainKernel(mustNet(t, cfg), TrainConfig{Optimizer: sgd}); err == nil {
		t.Fatal("expected error for SGD with velocities")
	}
}

func TestTrainKernelValidation(t *testing.T) {
	cfg := Config{InDim: 4, Hidden: []int{4}, Out: 2, Activation: ActReLU, Seed: 1}
	k, err := NewTrainKernel(mustNet(t, cfg), TrainConfig{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := k.Fit(context.Background(), nil, nil); err == nil {
		t.Fatal("expected error for empty training set")
	}
	if _, err := k.Fit(context.Background(), make([]float64, 7), []int{0, 1}); err == nil {
		t.Fatal("expected error for misaligned flat set")
	}
	bad := make([]float64, 8)
	bad[5] = math.NaN()
	if _, err := k.Fit(context.Background(), bad, []int{0, 1}); err == nil {
		t.Fatal("expected error for non-finite feature")
	}
	if _, err := k.Fit(context.Background(), make([]float64, 8), []int{0, 2}); err == nil {
		t.Fatal("expected error for out-of-range label")
	}
}

// TestTrainKernelEpochAllocs is the dynamic half of the hotalloc gate:
// the warm epoch inner loop — runBatch dispatch, chunkGrads fused
// passes, reduceGrads, optStep — performs zero heap allocations, serial
// and with the worker pool alike.
func TestTrainKernelEpochAllocs(t *testing.T) {
	_, flat, ys := tkDataset(64, 9, 2, 13)
	cfg := Config{InDim: 9, Hidden: []int{16, 8}, Out: 2, Activation: ActReLU, Seed: 5}

	for _, workers := range []int{1, 2} {
		k, err := NewTrainKernel(mustNet(t, cfg), TrainConfig{
			Schedule:    []Phase{{Epochs: 1, LR: 1e-3}},
			BatchSize:   32,
			Seed:        1,
			Workers:     workers,
			WeightDecay: 1e-4,
		})
		if err != nil {
			t.Fatal(err)
		}
		if workers > 1 {
			k.startWorkers()
			defer k.stopWorkers()
		}
		idx := make([]int, 32) // one full batch: Fit never passes more than BatchSize
		for i := range idx {
			idx[i] = i
		}
		k.runBatch(flat, ys, idx, 1e-3) // warm
		allocs := testing.AllocsPerRun(50, func() {
			k.runBatch(flat, ys, idx, 1e-3)
		})
		if allocs != 0 {
			t.Fatalf("workers=%d: warm runBatch allocated %.1f times per run, want 0", workers, allocs)
		}
		allocs = testing.AllocsPerRun(50, func() {
			k.chunkGrads(0)
			k.accumLayerGrads(k.slots[0], 0, k.slots[0].inEM, 8)
			k.reduceGrads(4, 1.0/32)
			k.optStep(1e-3)
		})
		if allocs != 0 {
			t.Fatalf("workers=%d: warm chunkGrads/reduceGrads/optStep allocated %.1f times per run, want 0", workers, allocs)
		}
	}
}

// TestTrainKernelGeneralTreeReduce exercises the nChunks > 4 generic
// reduction (batch sizes beyond 32) against the chunked Fit.
func TestTrainKernelGeneralTreeReduce(t *testing.T) {
	rows, flat, ys := tkDataset(200, 6, 2, 29)
	cfg := Config{InDim: 6, Hidden: []int{8}, Out: 2, Activation: ActReLU, Seed: 3}
	tc := TrainConfig{Schedule: []Phase{{Epochs: 2, LR: 1e-3}}, BatchSize: 96, Seed: 7, Workers: 1}
	ref, _ := trainLegacy(t, cfg, tc, rows, ys)
	for _, w := range []int{1, 4} {
		kTC := tc
		kTC.Workers = w
		got, _ := trainKernel(t, cfg, kTC, flat, ys)
		if !bytes.Equal(got, ref) {
			t.Fatalf("workers=%d: bytes differ with 12-chunk batches", w)
		}
	}
}
