// AVX kernels for the flat training kernel. Bit-identity rules:
// every lane is an independent sequential accumulator chain, every
// multiply and add is a separate correctly-rounded instruction (no
// FMA), accumulators are always the left operand of each add, and
// sums that start from zero start from a real zero register so −0
// products normalise to +0 exactly as the scalar code's `var sum
// float64; sum += ...` does. See simd.go for the reference Go
// semantics each TEXT block must reproduce.

#include "textflag.h"

// func hasAVXAsm() bool
TEXT ·hasAVXAsm(SB), NOSPLIT, $0-1
	MOVL $1, AX
	MOVL $0, CX
	CPUID
	// ECX bit 27 = OSXSAVE, bit 28 = AVX.
	MOVL CX, BX
	ANDL $(1<<27 | 1<<28), BX
	CMPL BX, $(1<<27 | 1<<28)
	JNE  noavx
	// XCR0 bits 1|2: OS saves XMM and YMM state.
	XORL CX, CX
	XGETBV
	ANDL $6, AX
	CMPL AX, $6
	JNE  noavx
	MOVB $1, ret+0(FP)
	RET
noavx:
	MOVB $0, ret+0(FP)
	RET

// func fwdrow8AVX(x, w *float64, cols int, acc *float64)
// acc[e] = Σ_c w[c]·x[c*8+e]; x unit-major stride 8, acc 8 wide.
TEXT ·fwdrow8AVX(SB), NOSPLIT, $0-32
	MOVQ x+0(FP), SI
	MOVQ w+8(FP), DI
	MOVQ cols+16(FP), CX
	MOVQ acc+24(FP), DX
	VXORPD Y0, Y0, Y0 // lanes 0-3
	VXORPD Y1, Y1, Y1 // lanes 4-7
	TESTQ CX, CX
	JZ   f1done
f1loop:
	VBROADCASTSD (DI), Y2
	VMULPD (SI), Y2, Y3   // w[c]·x[lanes 0-3]
	VADDPD Y3, Y0, Y0     // acc is the left add operand
	VMULPD 32(SI), Y2, Y4 // w[c]·x[lanes 4-7]
	VADDPD Y4, Y1, Y1
	ADDQ $8, DI
	ADDQ $64, SI
	DECQ CX
	JNZ  f1loop
f1done:
	VMOVUPD Y0, (DX)
	VMOVUPD Y1, 32(DX)
	VZEROUPPER
	RET

// func fwd2row8AVX(x, w *float64, cols int, acc *float64)
// Two adjacent weight rows (w and w+cols) against the same chunk:
// acc[0:8] for row 0, acc[8:16] for row 1. Four accumulator chains
// keep both rows' add latencies overlapped; each chain is still
// strictly sequential in c.
TEXT ·fwd2row8AVX(SB), NOSPLIT, $0-32
	MOVQ x+0(FP), SI
	MOVQ w+8(FP), DI
	MOVQ cols+16(FP), CX
	MOVQ acc+24(FP), DX
	MOVQ CX, R8
	SHLQ $3, R8
	ADDQ DI, R8       // second row: w + cols*8 bytes
	VXORPD Y0, Y0, Y0 // row0 lanes 0-3
	VXORPD Y1, Y1, Y1 // row0 lanes 4-7
	VXORPD Y2, Y2, Y2 // row1 lanes 0-3
	VXORPD Y3, Y3, Y3 // row1 lanes 4-7
	TESTQ CX, CX
	JZ   f2done
f2loop:
	VMOVUPD (SI), Y6
	VMOVUPD 32(SI), Y7
	VBROADCASTSD (DI), Y4
	VBROADCASTSD (R8), Y5
	VMULPD Y6, Y4, Y8
	VADDPD Y8, Y0, Y0
	VMULPD Y7, Y4, Y9
	VADDPD Y9, Y1, Y1
	VMULPD Y6, Y5, Y10
	VADDPD Y10, Y2, Y2
	VMULPD Y7, Y5, Y11
	VADDPD Y11, Y3, Y3
	ADDQ $8, DI
	ADDQ $8, R8
	ADDQ $64, SI
	DECQ CX
	JNZ  f2loop
f2done:
	VMOVUPD Y0, (DX)
	VMOVUPD Y1, 32(DX)
	VMOVUPD Y2, 64(DX)
	VMOVUPD Y3, 96(DX)
	VZEROUPPER
	RET

// func bwdrow8AVX(d, w, dprev *float64, cols int)
// dprev[c*8+e] += d[e]·w[c], unconditional (MulVecT order).
TEXT ·bwdrow8AVX(SB), NOSPLIT, $0-32
	MOVQ d+0(FP), SI
	MOVQ w+8(FP), DI
	MOVQ dprev+16(FP), DX
	MOVQ cols+24(FP), CX
	VMOVUPD (SI), Y0   // d lanes 0-3
	VMOVUPD 32(SI), Y1 // d lanes 4-7
	TESTQ CX, CX
	JZ   b1done
b1loop:
	VBROADCASTSD (DI), Y2
	VMULPD Y2, Y0, Y3  // d·w[c], lanes 0-3
	VMOVUPD (DX), Y5
	VADDPD Y3, Y5, Y5  // dprev is the left add operand
	VMOVUPD Y5, (DX)
	VMULPD Y2, Y1, Y4
	VMOVUPD 32(DX), Y6
	VADDPD Y4, Y6, Y6
	VMOVUPD Y6, 32(DX)
	ADDQ $8, DI
	ADDQ $64, DX
	DECQ CX
	JNZ  b1loop
b1done:
	VZEROUPPER
	RET

// func axpySetAVX(dst, x *float64, n int, a float64)
// dst[i] = 0 + a·x[i]; the zero register is the left add operand so
// −0 products normalise exactly like the scalar zeroed accumulator.
TEXT ·axpySetAVX(SB), NOSPLIT, $0-32
	MOVQ dst+0(FP), DI
	MOVQ x+8(FP), SI
	MOVQ n+16(FP), CX
	VBROADCASTSD a+24(FP), Y0
	VXORPD Y3, Y3, Y3
	MOVQ CX, BX
	SHRQ $2, BX
	JZ   astail
asloop:
	VMULPD (SI), Y0, Y1
	VADDPD Y1, Y3, Y2  // 0 + a·x
	VMOVUPD Y2, (DI)
	ADDQ $32, SI
	ADDQ $32, DI
	DECQ BX
	JNZ  asloop
astail:
	ANDQ $3, CX
	JZ   asdone
astloop:
	VMOVSD (SI), X1
	VMULSD X1, X0, X1  // a·x
	VADDSD X1, X3, X2  // 0 + a·x
	VMOVSD X2, (DI)
	ADDQ $8, SI
	ADDQ $8, DI
	DECQ CX
	JNZ  astloop
asdone:
	VZEROUPPER
	RET

// func axpyAddAVX(dst, x *float64, n int, a float64)
// dst[i] += a·x[i], dst as the left add operand.
TEXT ·axpyAddAVX(SB), NOSPLIT, $0-32
	MOVQ dst+0(FP), DI
	MOVQ x+8(FP), SI
	MOVQ n+16(FP), CX
	VBROADCASTSD a+24(FP), Y0
	MOVQ CX, BX
	SHRQ $2, BX
	JZ   aatail
aaloop:
	VMULPD (SI), Y0, Y1
	VMOVUPD (DI), Y2
	VADDPD Y1, Y2, Y2
	VMOVUPD Y2, (DI)
	ADDQ $32, SI
	ADDQ $32, DI
	DECQ BX
	JNZ  aaloop
aatail:
	ANDQ $3, CX
	JZ   aadone
aatloop:
	VMOVSD (SI), X1
	VMULSD X1, X0, X1
	VMOVSD (DI), X2
	VADDSD X1, X2, X2
	VMOVSD X2, (DI)
	ADDQ $8, SI
	ADDQ $8, DI
	DECQ CX
	JNZ  aatloop
aadone:
	VZEROUPPER
	RET

// func adamStepAVX(w, grad, mw, vw *float64, n int, b1, b2, om1, om2, c1, c2, eps, lr float64)
// Per element, in the exact scalar order (every op correctly
// rounded, divides and square root included):
//   m = b1·mw + om1·g ; v = b2·vw + (om2·g)·g
//   w −= lr·(m/c1) / (√(v/c2) + eps)
TEXT ·adamStepAVX(SB), NOSPLIT, $0-104
	MOVQ w+0(FP), DI
	MOVQ grad+8(FP), SI
	MOVQ mw+16(FP), R8
	MOVQ vw+24(FP), R9
	MOVQ n+32(FP), CX
	VBROADCASTSD b1+40(FP), Y8
	VBROADCASTSD b2+48(FP), Y10
	VBROADCASTSD om1+56(FP), Y9
	VBROADCASTSD om2+64(FP), Y11
	VBROADCASTSD c1+72(FP), Y12
	VBROADCASTSD c2+80(FP), Y13
	VBROADCASTSD eps+88(FP), Y14
	VBROADCASTSD lr+96(FP), Y6
	MOVQ CX, BX
	SHRQ $2, BX
	JZ   adtail
adloop:
	VMOVUPD (SI), Y1   // g
	VMOVUPD (R8), Y2   // mw
	VMULPD  Y2, Y8, Y2 // b1·mw
	VMULPD  Y1, Y9, Y4 // om1·g
	VADDPD  Y4, Y2, Y2 // m
	VMOVUPD Y2, (R8)
	VMOVUPD (R9), Y3   // vw
	VMULPD  Y3, Y10, Y3 // b2·vw
	VMULPD  Y1, Y11, Y4 // om2·g
	VMULPD  Y1, Y4, Y4  // (om2·g)·g
	VADDPD  Y4, Y3, Y3  // v
	VMOVUPD Y3, (R9)
	VDIVPD  Y12, Y2, Y2 // m/c1
	VMULPD  Y2, Y6, Y2  // lr·(m/c1)
	VDIVPD  Y13, Y3, Y3 // v/c2
	VSQRTPD Y3, Y3
	VADDPD  Y14, Y3, Y3 // √(v/c2) + eps
	VDIVPD  Y3, Y2, Y2  // update
	VMOVUPD (DI), Y0
	VSUBPD  Y2, Y0, Y0  // w − update
	VMOVUPD Y0, (DI)
	ADDQ $32, DI
	ADDQ $32, SI
	ADDQ $32, R8
	ADDQ $32, R9
	DECQ BX
	JNZ  adloop
adtail:
	ANDQ $3, CX
	JZ   addone
adtloop:
	VMOVSD (SI), X1
	VMOVSD (R8), X2
	VMULSD X2, X8, X2
	VMULSD X1, X9, X4
	VADDSD X4, X2, X2
	VMOVSD X2, (R8)
	VMOVSD (R9), X3
	VMULSD X3, X10, X3
	VMULSD X1, X11, X4
	VMULSD X1, X4, X4
	VADDSD X4, X3, X3
	VMOVSD X3, (R9)
	VDIVSD X12, X2, X2
	VMULSD X2, X6, X2
	VDIVSD X13, X3, X3
	VSQRTSD X3, X3, X3
	VADDSD X14, X3, X3
	VDIVSD X3, X2, X2
	VMOVSD (DI), X0
	VSUBSD X2, X0, X0
	VMOVSD X0, (DI)
	ADDQ $8, DI
	ADDQ $8, SI
	ADDQ $8, R8
	ADDQ $8, R9
	DECQ CX
	JNZ  adtloop
addone:
	VZEROUPPER
	RET
