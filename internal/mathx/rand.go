package mathx

import (
	"math"
	"math/rand"
)

// NewRand returns a rand.Rand seeded deterministically. Every stochastic
// component in this repository threads one of these through its API so
// experiments are reproducible run to run.
func NewRand(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// FillUniform fills v with samples from U(lo, hi).
func FillUniform(v []float64, lo, hi float64, rng *rand.Rand) {
	span := hi - lo
	for i := range v {
		v[i] = lo + span*rng.Float64()
	}
}

// FillNormal fills v with samples from N(mean, std²).
func FillNormal(v []float64, mean, std float64, rng *rand.Rand) {
	for i := range v {
		v[i] = mean + std*rng.NormFloat64()
	}
}

// GlorotUniform fills a weight matrix with the Glorot/Xavier uniform
// initialisation appropriate for a fanIn×fanOut dense layer. This is the
// default initialiser Keras uses for Dense layers, matching the paper's
// reference implementation.
func GlorotUniform(m *Matrix, rng *rand.Rand) {
	limit := glorotLimit(m.Cols, m.Rows)
	FillUniform(m.Data, -limit, limit, rng)
}

func glorotLimit(fanIn, fanOut int) float64 {
	n := float64(fanIn + fanOut)
	if n == 0 {
		return 0
	}
	return math.Sqrt(6 / n)
}

// Shuffle permutes idx in place using Fisher–Yates.
func Shuffle(idx []int, rng *rand.Rand) {
	rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
}

// Perm returns a permutation of [0, n).
func Perm(n int, rng *rand.Rand) []int {
	return rng.Perm(n)
}

// SampleWithoutReplacement returns k distinct indices drawn uniformly from
// [0, n). It panics if k > n.
func SampleWithoutReplacement(n, k int, rng *rand.Rand) []int {
	if k > n {
		panic("mathx: SampleWithoutReplacement k > n")
	}
	p := rng.Perm(n)
	return p[:k]
}
