package mathx

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestDot(t *testing.T) {
	cases := []struct {
		a, b []float64
		want float64
	}{
		{[]float64{}, []float64{}, 0},
		{[]float64{1, 2, 3}, []float64{4, 5, 6}, 32},
		{[]float64{1, -1}, []float64{1, 1}, 0},
		{[]float64{0.5}, []float64{0.5}, 0.25},
	}
	for _, c := range cases {
		if got := Dot(c.a, c.b); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Dot(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestDotPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Dot did not panic on length mismatch")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

func TestNorms(t *testing.T) {
	v := []float64{3, -4}
	if got := Norm2(v); !almostEqual(got, 5, 1e-12) {
		t.Errorf("Norm2 = %v, want 5", got)
	}
	if got := Norm1(v); !almostEqual(got, 7, 1e-12) {
		t.Errorf("Norm1 = %v, want 7", got)
	}
}

func TestCosineSimilarity(t *testing.T) {
	if got := CosineSimilarity([]float64{1, 0}, []float64{0, 1}); !almostEqual(got, 0, 1e-12) {
		t.Errorf("orthogonal cosine = %v, want 0", got)
	}
	if got := CosineSimilarity([]float64{2, 2}, []float64{1, 1}); !almostEqual(got, 1, 1e-12) {
		t.Errorf("parallel cosine = %v, want 1", got)
	}
	if got := CosineSimilarity([]float64{1, 1}, []float64{-1, -1}); !almostEqual(got, -1, 1e-12) {
		t.Errorf("antiparallel cosine = %v, want -1", got)
	}
	if got := CosineSimilarity([]float64{0, 0}, []float64{1, 1}); got != 0 {
		t.Errorf("zero-vector cosine = %v, want 0", got)
	}
}

func TestCosineSimilarityBounds(t *testing.T) {
	f := func(a, b [8]float64) bool {
		// testing/quick generates values up to ±MaxFloat64, whose squares
		// overflow; fold inputs into a sane range first.
		av, bv := make([]float64, 8), make([]float64, 8)
		for i := range a {
			av[i] = math.Remainder(a[i], 1e6)
			bv[i] = math.Remainder(b[i], 1e6)
		}
		c := CosineSimilarity(av, bv)
		return c >= -1-1e-9 && c <= 1+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAddSubScale(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{4, 5, 6}
	if got := Add(a, b); got[0] != 5 || got[1] != 7 || got[2] != 9 {
		t.Errorf("Add = %v", got)
	}
	if got := Sub(b, a); got[0] != 3 || got[1] != 3 || got[2] != 3 {
		t.Errorf("Sub = %v", got)
	}
	if got := Scale(a, 2); got[0] != 2 || got[1] != 4 || got[2] != 6 {
		t.Errorf("Scale = %v", got)
	}
	if got := AbsDiff(a, b); got[0] != 3 || got[1] != 3 || got[2] != 3 {
		t.Errorf("AbsDiff = %v", got)
	}
}

func TestAddSubRoundTrip(t *testing.T) {
	f := func(a, b [6]float64) bool {
		s := Add(a[:], b[:])
		r := Sub(s, b[:])
		for i := range r {
			if !almostEqual(r[i], a[i], 1e-6*(1+math.Abs(a[i])+math.Abs(b[i]))) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAxpyTo(t *testing.T) {
	dst := []float64{1, 1}
	AxpyTo(dst, 2, []float64{3, 4})
	if dst[0] != 7 || dst[1] != 9 {
		t.Errorf("AxpyTo = %v", dst)
	}
}

func TestAliasingAddTo(t *testing.T) {
	a := []float64{1, 2}
	AddTo(a, a, a) // a = a+a
	if a[0] != 2 || a[1] != 4 {
		t.Errorf("aliased AddTo = %v", a)
	}
}

func TestStats(t *testing.T) {
	v := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(v); !almostEqual(got, 5, 1e-12) {
		t.Errorf("Mean = %v", got)
	}
	if got := StdDev(v); !almostEqual(got, 2, 1e-12) {
		t.Errorf("StdDev = %v", got)
	}
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %v", got)
	}
	if got := Variance([]float64{42}); got != 0 {
		t.Errorf("Variance singleton = %v", got)
	}
}

func TestMinMaxArgMax(t *testing.T) {
	v := []float64{3, -1, 7, 7, 0}
	if got := Min(v); got != -1 {
		t.Errorf("Min = %v", got)
	}
	if got := Max(v); got != 7 {
		t.Errorf("Max = %v", got)
	}
	if got := ArgMax(v); got != 2 {
		t.Errorf("ArgMax = %v, want first of tied maxima", got)
	}
	if got := ArgMax(nil); got != -1 {
		t.Errorf("ArgMax(nil) = %v", got)
	}
}

func TestMeanVectors(t *testing.T) {
	got := MeanVectors([][]float64{{1, 2}, {3, 4}})
	if got[0] != 2 || got[1] != 3 {
		t.Errorf("MeanVectors = %v", got)
	}
	if MeanVectors(nil) != nil {
		t.Error("MeanVectors(nil) should be nil")
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 1) != 1 || Clamp(-5, 0, 1) != 0 || Clamp(0.5, 0, 1) != 0.5 {
		t.Error("Clamp broken")
	}
}

func TestCloneIndependence(t *testing.T) {
	a := []float64{1, 2}
	b := Clone(a)
	b[0] = 99
	if a[0] != 1 {
		t.Error("Clone shares backing array")
	}
}

func TestEuclideanDistance(t *testing.T) {
	if got := EuclideanDistance([]float64{0, 0}, []float64{3, 4}); !almostEqual(got, 5, 1e-12) {
		t.Errorf("EuclideanDistance = %v", got)
	}
}

func TestEuclideanTriangleInequality(t *testing.T) {
	f := func(a, b, c [5]float64) bool {
		ab := EuclideanDistance(a[:], b[:])
		bc := EuclideanDistance(b[:], c[:])
		ac := EuclideanDistance(a[:], c[:])
		return ac <= ab+bc+1e-9*(1+ab+bc)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
