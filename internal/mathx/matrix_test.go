package mathx

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(0, 0, 1)
	m.Set(1, 2, 6)
	if m.At(0, 0) != 1 || m.At(1, 2) != 6 || m.At(0, 1) != 0 {
		t.Error("At/Set broken")
	}
	r := m.Row(1)
	r[0] = 42
	if m.At(1, 0) != 42 {
		t.Error("Row must be a view, not a copy")
	}
}

func TestMatrixFromRows(t *testing.T) {
	m := MatrixFromRows([][]float64{{1, 2}, {3, 4}})
	if m.Rows != 2 || m.Cols != 2 || m.At(1, 0) != 3 {
		t.Errorf("MatrixFromRows = %+v", m)
	}
	empty := MatrixFromRows(nil)
	if empty.Rows != 0 || empty.Cols != 0 {
		t.Error("empty MatrixFromRows should be 0x0")
	}
}

func TestMatrixFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on ragged rows")
		}
	}()
	MatrixFromRows([][]float64{{1, 2}, {3}})
}

func TestTranspose(t *testing.T) {
	m := MatrixFromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	tr := m.T()
	if tr.Rows != 3 || tr.Cols != 2 {
		t.Fatalf("T dims = %dx%d", tr.Rows, tr.Cols)
	}
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			if m.At(i, j) != tr.At(j, i) {
				t.Errorf("T mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestMulVec(t *testing.T) {
	m := MatrixFromRows([][]float64{{1, 2}, {3, 4}})
	dst := make([]float64, 2)
	m.MulVec(dst, []float64{1, 1})
	if dst[0] != 3 || dst[1] != 7 {
		t.Errorf("MulVec = %v", dst)
	}
}

func TestMulVecTMatchesTranspose(t *testing.T) {
	f := func(vals [12]float64, x [3]float64) bool {
		m := NewMatrix(3, 4)
		copy(m.Data, vals[:])
		got := make([]float64, 4)
		m.MulVecT(got, x[:])
		want := make([]float64, 4)
		m.T().MulVec(want, x[:])
		for i := range got {
			if math.Abs(got[i]-want[i]) > 1e-6*(1+math.Abs(want[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGemm(t *testing.T) {
	a := MatrixFromRows([][]float64{{1, 2}, {3, 4}})
	b := MatrixFromRows([][]float64{{5, 6}, {7, 8}})
	c := NewMatrix(2, 2)
	Gemm(c, a, b)
	want := [][]float64{{19, 22}, {43, 50}}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if c.At(i, j) != want[i][j] {
				t.Errorf("Gemm (%d,%d) = %v, want %v", i, j, c.At(i, j), want[i][j])
			}
		}
	}
}

func TestGemmIdentity(t *testing.T) {
	a := MatrixFromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	id := NewMatrix(3, 3)
	for i := 0; i < 3; i++ {
		id.Set(i, i, 1)
	}
	c := NewMatrix(2, 3)
	Gemm(c, a, id)
	for i := range a.Data {
		if c.Data[i] != a.Data[i] {
			t.Fatal("A·I != A")
		}
	}
}

func TestGemmShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on Gemm shape mismatch")
		}
	}()
	Gemm(NewMatrix(2, 2), NewMatrix(2, 3), NewMatrix(2, 3))
}

func TestAddOuterTo(t *testing.T) {
	m := NewMatrix(2, 2)
	m.AddOuterTo(2, []float64{1, 2}, []float64{3, 4})
	// 2 * [1;2]·[3 4] = [[6,8],[12,16]]
	if m.At(0, 0) != 6 || m.At(0, 1) != 8 || m.At(1, 0) != 12 || m.At(1, 1) != 16 {
		t.Errorf("AddOuterTo = %v", m.Data)
	}
}

func TestCloneAndScale(t *testing.T) {
	m := MatrixFromRows([][]float64{{1, 2}})
	c := m.Clone()
	c.Scale(10)
	if m.At(0, 0) != 1 || c.At(0, 0) != 10 {
		t.Error("Clone/Scale interaction broken")
	}
	c.AddScaled(1, m)
	if c.At(0, 1) != 22 {
		t.Errorf("AddScaled = %v", c.Data)
	}
}
