package mathx

import "math"

// DefaultTol is the comparison tolerance used across the repository
// when no domain-specific bound applies: loose enough to absorb a few
// hundred ULPs of reassociation drift on O(1) quantities, tight enough
// to catch any real numeric change.
const DefaultTol = 1e-9

// AlmostEqual reports whether a and b are equal within tol, measured
// absolutely for values near zero and relatively otherwise:
//
//	|a-b| <= tol * max(1, |a|, |b|)
//
// This is the comparison the floateq analyzer points to instead of ==:
// it is reflexive, symmetric, and stable under the one-ULP summation
// reordering that exact equality turns into a Heisenbug. NaN compares
// unequal to everything, matching IEEE semantics.
func AlmostEqual(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	if a == b { //lint:allow floateq fast path; exact equality implies almost-equality
		return true
	}
	// Unequal infinities (Inf vs -Inf, Inf vs finite) would otherwise
	// satisfy |a-b| <= tol*Inf below.
	if math.IsInf(a, 0) || math.IsInf(b, 0) {
		return false
	}
	scale := 1.0
	if aa := math.Abs(a); aa > scale {
		scale = aa
	}
	if ab := math.Abs(b); ab > scale {
		scale = ab
	}
	return math.Abs(a-b) <= tol*scale
}

// VecAlmostEqual reports element-wise AlmostEqual over equal-length
// vectors; vectors of different lengths are never almost equal.
func VecAlmostEqual(a, b []float64, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !AlmostEqual(a[i], b[i], tol) {
			return false
		}
	}
	return true
}
