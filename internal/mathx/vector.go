// Package mathx provides the small dense linear-algebra and statistics
// kernels used throughout LEAPME: vector arithmetic, dense matrices with a
// cache-friendly GEMM, reductions, and deterministic random initialisers.
//
// All functions operate on []float64 and are allocation-conscious: the
// mutating variants (AddTo, ScaleTo, ...) write into a caller-supplied
// destination so hot loops in the neural network and the embedding trainers
// can reuse buffers.
package mathx

import (
	"fmt"
	"math"
)

// Dot returns the inner product of a and b.
// It panics if the lengths differ; dimension mismatches are programming
// errors in this codebase, not runtime conditions.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("mathx: Dot length mismatch %d != %d", len(a), len(b)))
	}
	var s float64
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// Norm2 returns the Euclidean (L2) norm of v.
func Norm2(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// Norm1 returns the L1 norm of v.
func Norm1(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += math.Abs(x)
	}
	return s
}

// CosineSimilarity returns the cosine of the angle between a and b.
// If either vector has zero norm the similarity is defined as 0.
func CosineSimilarity(a, b []float64) float64 {
	na, nb := Norm2(a), Norm2(b)
	if na == 0 || nb == 0 {
		return 0
	}
	return Dot(a, b) / (na * nb)
}

// CosineDistance returns 1 - CosineSimilarity(a, b).
func CosineDistance(a, b []float64) float64 {
	return 1 - CosineSimilarity(a, b)
}

// EuclideanDistance returns the L2 distance between a and b.
func EuclideanDistance(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("mathx: EuclideanDistance length mismatch %d != %d", len(a), len(b)))
	}
	var s float64
	for i, v := range a {
		d := v - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// Add returns a new vector a+b.
func Add(a, b []float64) []float64 {
	out := make([]float64, len(a))
	AddTo(out, a, b)
	return out
}

// AddTo stores a+b into dst. dst may alias a or b.
func AddTo(dst, a, b []float64) {
	if len(a) != len(b) || len(dst) != len(a) {
		panic("mathx: AddTo length mismatch")
	}
	for i := range a {
		dst[i] = a[i] + b[i]
	}
}

// Sub returns a new vector a-b.
func Sub(a, b []float64) []float64 {
	out := make([]float64, len(a))
	SubTo(out, a, b)
	return out
}

// SubTo stores a-b into dst. dst may alias a or b.
func SubTo(dst, a, b []float64) {
	if len(a) != len(b) || len(dst) != len(a) {
		panic("mathx: SubTo length mismatch")
	}
	for i := range a {
		dst[i] = a[i] - b[i]
	}
}

// AbsDiff returns |a-b| element-wise as a new vector.
func AbsDiff(a, b []float64) []float64 {
	if len(a) != len(b) {
		panic("mathx: AbsDiff length mismatch")
	}
	out := make([]float64, len(a))
	for i := range a {
		out[i] = math.Abs(a[i] - b[i])
	}
	return out
}

// Scale returns a new vector v*s.
func Scale(v []float64, s float64) []float64 {
	out := make([]float64, len(v))
	ScaleTo(out, v, s)
	return out
}

// ScaleTo stores v*s into dst. dst may alias v.
func ScaleTo(dst, v []float64, s float64) {
	if len(dst) != len(v) {
		panic("mathx: ScaleTo length mismatch")
	}
	for i := range v {
		dst[i] = v[i] * s
	}
}

// AxpyTo computes dst += alpha*x, the classic "axpy" update.
func AxpyTo(dst []float64, alpha float64, x []float64) {
	if len(dst) != len(x) {
		panic("mathx: AxpyTo length mismatch")
	}
	for i := range x {
		dst[i] += alpha * x[i]
	}
}

// Fill sets every element of v to x.
func Fill(v []float64, x float64) {
	for i := range v {
		v[i] = x
	}
}

// Zero sets every element of v to 0.
func Zero(v []float64) { Fill(v, 0) }

// Mean returns the arithmetic mean of v, or 0 for an empty slice.
func Mean(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	return Sum(v) / float64(len(v))
}

// Sum returns the sum of all elements of v.
func Sum(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x
	}
	return s
}

// Variance returns the population variance of v, or 0 for slices with
// fewer than two elements.
func Variance(v []float64) float64 {
	if len(v) < 2 {
		return 0
	}
	m := Mean(v)
	var s float64
	for _, x := range v {
		d := x - m
		s += d * d
	}
	return s / float64(len(v))
}

// StdDev returns the population standard deviation of v.
func StdDev(v []float64) float64 { return math.Sqrt(Variance(v)) }

// Min returns the minimum element of v. It panics on an empty slice.
func Min(v []float64) float64 {
	if len(v) == 0 {
		panic("mathx: Min of empty slice")
	}
	m := v[0]
	for _, x := range v[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum element of v. It panics on an empty slice.
func Max(v []float64) float64 {
	if len(v) == 0 {
		panic("mathx: Max of empty slice")
	}
	m := v[0]
	for _, x := range v[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// ArgMax returns the index of the maximum element of v, or -1 for an
// empty slice. Ties resolve to the lowest index.
func ArgMax(v []float64) int {
	if len(v) == 0 {
		return -1
	}
	best, arg := v[0], 0
	for i, x := range v[1:] {
		if x > best {
			best, arg = x, i+1
		}
	}
	return arg
}

// MeanVectors returns the element-wise mean of the given vectors, all of
// which must share the same length. It returns nil for an empty input.
func MeanVectors(vs [][]float64) []float64 {
	if len(vs) == 0 {
		return nil
	}
	out := make([]float64, len(vs[0]))
	for _, v := range vs {
		AddTo(out, out, v)
	}
	ScaleTo(out, out, 1/float64(len(vs)))
	return out
}

// Clamp limits x to the interval [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// Clone returns a copy of v.
func Clone(v []float64) []float64 {
	out := make([]float64, len(v))
	copy(out, v)
	return out
}

// Normalized returns a unit-L2-norm copy of v. The zero vector (the
// repo's convention for fully out-of-vocabulary phrases) is returned as a
// zero copy, so cosine against it stays 0 rather than NaN.
func Normalized(v []float64) []float64 {
	out := Clone(v)
	NormalizeInPlace(out)
	return out
}

// NormalizeInPlace scales v to unit L2 norm in place, with the same
// zero-vector convention as Normalized.
func NormalizeInPlace(v []float64) {
	n := Norm2(v)
	if n == 0 {
		return
	}
	ScaleTo(v, v, 1/n)
}
