package mathx

import (
	"math"
	"testing"
)

func TestNewRandDeterminism(t *testing.T) {
	a, b := NewRand(7), NewRand(7)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed must produce same stream")
		}
	}
}

func TestFillUniformRange(t *testing.T) {
	v := make([]float64, 10000)
	FillUniform(v, -2, 3, NewRand(1))
	for _, x := range v {
		if x < -2 || x >= 3 {
			t.Fatalf("sample %v outside [-2,3)", x)
		}
	}
	if m := Mean(v); math.Abs(m-0.5) > 0.1 {
		t.Errorf("uniform mean = %v, want ~0.5", m)
	}
}

func TestFillNormalMoments(t *testing.T) {
	v := make([]float64, 20000)
	FillNormal(v, 1, 2, NewRand(2))
	if m := Mean(v); math.Abs(m-1) > 0.1 {
		t.Errorf("normal mean = %v, want ~1", m)
	}
	if s := StdDev(v); math.Abs(s-2) > 0.1 {
		t.Errorf("normal std = %v, want ~2", s)
	}
}

func TestGlorotUniformLimit(t *testing.T) {
	m := NewMatrix(64, 128)
	GlorotUniform(m, NewRand(3))
	limit := math.Sqrt(6.0 / float64(64+128))
	for _, x := range m.Data {
		if math.Abs(x) > limit {
			t.Fatalf("weight %v exceeds glorot limit %v", x, limit)
		}
	}
	// Not all zero.
	if Norm2(m.Data) == 0 {
		t.Error("GlorotUniform produced all zeros")
	}
}

func TestSampleWithoutReplacement(t *testing.T) {
	idx := SampleWithoutReplacement(10, 5, NewRand(4))
	if len(idx) != 5 {
		t.Fatalf("got %d samples", len(idx))
	}
	seen := map[int]bool{}
	for _, i := range idx {
		if i < 0 || i >= 10 {
			t.Fatalf("index %d out of range", i)
		}
		if seen[i] {
			t.Fatalf("duplicate index %d", i)
		}
		seen[i] = true
	}
}

func TestSampleWithoutReplacementPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic when k > n")
		}
	}()
	SampleWithoutReplacement(3, 4, NewRand(5))
}

func TestShuffleIsPermutation(t *testing.T) {
	idx := []int{0, 1, 2, 3, 4, 5, 6, 7}
	Shuffle(idx, NewRand(6))
	seen := make([]bool, 8)
	for _, i := range idx {
		seen[i] = true
	}
	for i, ok := range seen {
		if !ok {
			t.Fatalf("element %d lost in shuffle", i)
		}
	}
}
