package mathx

import "fmt"

// DotQ8 returns the inner product of an int8-quantised weight row with a
// float32 activation vector, accumulating in float32.
//
// Unlike Dot, this kernel uses four independent accumulators: the
// quantised path is tolerance-checked against the float64 reference
// rather than bit-pinned, so reassociating the sum is legal here and
// breaks the loop-carried dependency that caps the scalar float64 path.
// The fold order ((s0+s1)+(s2+s3)) is fixed, so the result is still
// deterministic for a given input.
func DotQ8(w []int8, x []float32) float32 {
	if len(w) != len(x) {
		panic(fmt.Sprintf("mathx: DotQ8 length mismatch %d != %d", len(w), len(x)))
	}
	var s0, s1, s2, s3 float32
	i := 0
	for ; i+4 <= len(w); i += 4 {
		s0 += float32(w[i]) * x[i]
		s1 += float32(w[i+1]) * x[i+1]
		s2 += float32(w[i+2]) * x[i+2]
		s3 += float32(w[i+3]) * x[i+3]
	}
	for ; i < len(w); i++ {
		s0 += float32(w[i]) * x[i]
	}
	return (s0 + s1) + (s2 + s3)
}
