package mathx

import (
	"math"
	"testing"
)

func TestAlmostEqual(t *testing.T) {
	cases := []struct {
		name string
		a, b float64
		tol  float64
		want bool
	}{
		{"exact", 1.5, 1.5, DefaultTol, true},
		{"zero", 0, 0, DefaultTol, true},
		{"one ulp of reassociation", 0.1 + 0.2, 0.3, DefaultTol, true},
		{"absolute near zero", 1e-12, -1e-12, 1e-9, true},
		{"relative at large scale", 1e12, 1e12 * (1 + 1e-10), 1e-9, true},
		{"relative violation", 1e12, 1e12 * (1 + 1e-8), 1e-9, false},
		{"plain difference", 1.0, 1.1, DefaultTol, false},
		{"nan left", math.NaN(), 1, DefaultTol, false},
		{"nan right", 1, math.NaN(), DefaultTol, false},
		{"nan both", math.NaN(), math.NaN(), DefaultTol, false},
		{"infinities equal", math.Inf(1), math.Inf(1), DefaultTol, true},
		{"opposite infinities", math.Inf(1), math.Inf(-1), DefaultTol, false},
	}
	for _, c := range cases {
		if got := AlmostEqual(c.a, c.b, c.tol); got != c.want {
			t.Errorf("%s: AlmostEqual(%v, %v, %v) = %v, want %v", c.name, c.a, c.b, c.tol, got, c.want)
		}
		if got := AlmostEqual(c.b, c.a, c.tol); got != c.want {
			t.Errorf("%s: not symmetric: AlmostEqual(%v, %v, %v) = %v, want %v", c.name, c.b, c.a, c.tol, got, c.want)
		}
	}
}

func TestVecAlmostEqual(t *testing.T) {
	a := []float64{1, 2, 3}
	if !VecAlmostEqual(a, []float64{1, 2, 3 + 1e-12}, DefaultTol) {
		t.Error("near-identical vectors should compare almost equal")
	}
	if VecAlmostEqual(a, []float64{1, 2}, DefaultTol) {
		t.Error("different lengths must never compare equal")
	}
	if VecAlmostEqual(a, []float64{1, 2, 4}, DefaultTol) {
		t.Error("differing element must fail")
	}
	if !VecAlmostEqual(nil, nil, DefaultTol) {
		t.Error("two empty vectors are equal")
	}
}
