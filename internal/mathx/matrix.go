package mathx

import "fmt"

// Matrix is a dense row-major matrix of float64.
// The zero value is an empty matrix; use NewMatrix to allocate.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols, row-major
}

// NewMatrix allocates a zeroed rows×cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("mathx: NewMatrix with negative dims %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// MatrixFromRows builds a matrix from row slices, which must all share the
// same length. The data is copied.
func MatrixFromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return NewMatrix(0, 0)
	}
	m := NewMatrix(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.Cols {
			panic(fmt.Sprintf("mathx: MatrixFromRows ragged input: row %d has %d cols, want %d", i, len(r), m.Cols))
		}
		copy(m.Row(i), r)
	}
	return m
}

// At returns the element at (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns the element at (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns row i as a mutable slice view into the matrix.
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// Zero resets all elements of m to 0.
func (m *Matrix) Zero() { Zero(m.Data) }

// T returns a newly allocated transpose of m.
func (m *Matrix) T() *Matrix {
	out := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			out.Data[j*out.Cols+i] = v
		}
	}
	return out
}

// MulVec computes dst = m · x for a column vector x of length m.Cols,
// storing the result in dst of length m.Rows.
func (m *Matrix) MulVec(dst, x []float64) {
	if len(x) != m.Cols || len(dst) != m.Rows {
		panic(fmt.Sprintf("mathx: MulVec shape mismatch: %dx%d by %d into %d", m.Rows, m.Cols, len(x), len(dst)))
	}
	for i := 0; i < m.Rows; i++ {
		dst[i] = Dot(m.Row(i), x)
	}
}

// MulVecT computes dst = mᵀ · x for x of length m.Rows, storing into dst of
// length m.Cols, without materialising the transpose.
func (m *Matrix) MulVecT(dst, x []float64) {
	if len(x) != m.Rows || len(dst) != m.Cols {
		panic(fmt.Sprintf("mathx: MulVecT shape mismatch: %dx%d by %d into %d", m.Rows, m.Cols, len(x), len(dst)))
	}
	Zero(dst)
	for i := 0; i < m.Rows; i++ {
		AxpyTo(dst, x[i], m.Row(i))
	}
}

// Gemm computes c = a · b. The receiver-free form keeps call sites explicit
// about which operand is which. It panics on shape mismatch. The kernel is
// the classic ikj loop order, which is cache-friendly for row-major data.
func Gemm(c, a, b *Matrix) {
	if a.Cols != b.Rows || c.Rows != a.Rows || c.Cols != b.Cols {
		panic(fmt.Sprintf("mathx: Gemm shape mismatch: %dx%d · %dx%d into %dx%d",
			a.Rows, a.Cols, b.Rows, b.Cols, c.Rows, c.Cols))
	}
	c.Zero()
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		crow := c.Row(i)
		for k := 0; k < a.Cols; k++ {
			aik := arow[k]
			if aik == 0 {
				continue
			}
			brow := b.Row(k)
			AxpyTo(crow, aik, brow)
		}
	}
}

// AddOuterTo accumulates m += alpha · x ⊗ y (outer product), where x has
// length m.Rows and y has length m.Cols.
func (m *Matrix) AddOuterTo(alpha float64, x, y []float64) {
	if len(x) != m.Rows || len(y) != m.Cols {
		panic("mathx: AddOuterTo shape mismatch")
	}
	for i, xi := range x {
		if xi == 0 {
			continue
		}
		AxpyTo(m.Row(i), alpha*xi, y)
	}
}

// Scale multiplies every element of m by s in place.
func (m *Matrix) Scale(s float64) {
	for i := range m.Data {
		m.Data[i] *= s
	}
}

// AddScaled accumulates m += alpha · other, element-wise.
func (m *Matrix) AddScaled(alpha float64, other *Matrix) {
	if m.Rows != other.Rows || m.Cols != other.Cols {
		panic("mathx: AddScaled shape mismatch")
	}
	AxpyTo(m.Data, alpha, other.Data)
}
