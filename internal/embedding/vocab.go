package embedding

import (
	"fmt"
	"sort"
)

// Vocab maps words to dense integer ids. Ids are assigned by descending
// corpus frequency (ties broken lexicographically) so that id 0 is the most
// frequent word, matching the layout GloVe and word2vec tooling expect.
type Vocab struct {
	words []string       // id → word
	ids   map[string]int // word → id
	count []int          // id → corpus frequency
}

// BuildVocab scans sentences and keeps every word occurring at least
// minCount times.
func BuildVocab(sentences [][]string, minCount int) *Vocab {
	if minCount < 1 {
		minCount = 1
	}
	freq := map[string]int{}
	for _, s := range sentences {
		for _, w := range s {
			freq[w]++
		}
	}
	type wc struct {
		w string
		c int
	}
	kept := make([]wc, 0, len(freq))
	for w, c := range freq {
		if c >= minCount {
			kept = append(kept, wc{w, c})
		}
	}
	sort.Slice(kept, func(i, j int) bool {
		if kept[i].c != kept[j].c {
			return kept[i].c > kept[j].c
		}
		return kept[i].w < kept[j].w
	})
	v := &Vocab{
		words: make([]string, len(kept)),
		ids:   make(map[string]int, len(kept)),
		count: make([]int, len(kept)),
	}
	for i, k := range kept {
		v.words[i] = k.w
		v.ids[k.w] = i
		v.count[i] = k.c
	}
	return v
}

// Size returns the number of words in the vocabulary.
func (v *Vocab) Size() int { return len(v.words) }

// ID returns the id of w and whether it is in the vocabulary.
func (v *Vocab) ID(w string) (int, bool) {
	id, ok := v.ids[w]
	return id, ok
}

// Word returns the word with the given id. It panics on out-of-range ids.
func (v *Vocab) Word(id int) string {
	if id < 0 || id >= len(v.words) {
		panic(fmt.Sprintf("embedding: word id %d out of range [0,%d)", id, len(v.words)))
	}
	return v.words[id]
}

// Count returns the corpus frequency of the word with the given id.
func (v *Vocab) Count(id int) int { return v.count[id] }

// Words returns the words in id order. The returned slice must not be
// modified.
func (v *Vocab) Words() []string { return v.words }
