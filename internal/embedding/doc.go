// Package embedding provides the word-embedding substrate for LEAPME.
//
// The paper uses pre-trained 300-dimensional GloVe vectors (Common Crawl).
// Those weights are not redistributable and unavailable offline, so this
// package implements the *training side* of GloVe from scratch — vocabulary
// construction, windowed co-occurrence counting, and the AdaGrad-optimised
// weighted least-squares objective of Pennington et al. (2014) — plus a
// skip-gram-with-negative-sampling (word2vec) trainer as an alternative.
// Training on a domain corpus (see package domain) yields vectors whose
// geometry has the property LEAPME relies on: synonymous domain terms such
// as "mp", "megapixels" and "resolution" land near each other, while
// unrelated terms do not.
//
// The Store type is the serving side: it maps words to vectors, averages
// the vectors of a phrase (unknown words map to the zero vector, exactly as
// in the paper), and answers nearest-neighbour queries for diagnostics.
package embedding
