package embedding

import "testing"

func sentences() [][]string {
	return [][]string{
		{"camera", "resolution", "megapixels"},
		{"camera", "sensor", "resolution"},
		{"camera", "lens"},
	}
}

func TestBuildVocabOrdering(t *testing.T) {
	v := BuildVocab(sentences(), 1)
	if v.Size() != 5 {
		t.Fatalf("size = %d, want 5", v.Size())
	}
	// "camera" occurs 3 times → id 0.
	if v.Word(0) != "camera" {
		t.Errorf("most frequent word = %q", v.Word(0))
	}
	if c := v.Count(0); c != 3 {
		t.Errorf("count(camera) = %d", c)
	}
	// Frequency ties break lexicographically.
	id1, _ := v.ID("resolution")
	if id1 != 1 {
		t.Errorf("resolution id = %d, want 1 (freq 2)", id1)
	}
	if _, ok := v.ID("absent"); ok {
		t.Error("ID reported absent word present")
	}
}

func TestBuildVocabMinCount(t *testing.T) {
	v := BuildVocab(sentences(), 2)
	if v.Size() != 2 { // camera (3), resolution (2)
		t.Fatalf("size with minCount=2: %d, want 2", v.Size())
	}
	if _, ok := v.ID("lens"); ok {
		t.Error("lens should be cut by minCount")
	}
}

func TestVocabWordPanics(t *testing.T) {
	v := BuildVocab(sentences(), 1)
	defer func() {
		if recover() == nil {
			t.Fatal("Word(-1) did not panic")
		}
	}()
	v.Word(-1)
}

func TestCooccurrenceCounts(t *testing.T) {
	v := BuildVocab(sentences(), 1)
	co := CountCooccurrences(sentences(), v, 2)
	cam, _ := v.ID("camera")
	res, _ := v.ID("resolution")
	mp, _ := v.ID("megapixels")
	// camera–resolution: distance 1 in sent 1 (weight 1), distance 2 in
	// sent 2 (weight 0.5) → 1.5.
	if got := co.Get(cam, res); got != 1.5 {
		t.Errorf("camera-resolution = %v, want 1.5", got)
	}
	// Symmetric access.
	if co.Get(res, cam) != co.Get(cam, res) {
		t.Error("co-occurrence should be symmetric")
	}
	// resolution–megapixels adjacent once → 1.
	if got := co.Get(res, mp); got != 1 {
		t.Errorf("resolution-megapixels = %v, want 1", got)
	}
	if co.NumPairs() == 0 {
		t.Error("no pairs counted")
	}
}

func TestCooccurrenceWindowLimit(t *testing.T) {
	v := BuildVocab(sentences(), 1)
	co := CountCooccurrences(sentences(), v, 1)
	cam, _ := v.ID("camera")
	mp, _ := v.ID("megapixels")
	if got := co.Get(cam, mp); got != 0 {
		t.Errorf("window 1 should not pair camera-megapixels, got %v", got)
	}
}
