package embedding

import (
	"fmt"
	"sort"

	"leapme/internal/mathx"
	"leapme/internal/text"
)

// QualityReport measures whether a store exhibits the geometry LEAPME's
// features rely on: phrases naming the same concept embed closer together
// than phrases naming different concepts.
type QualityReport struct {
	// WithinMean is the mean cosine similarity between phrases of the
	// same synonym group.
	WithinMean float64
	// CrossMean is the mean cosine similarity between phrases of
	// different groups.
	CrossMean float64
	// Separation is WithinMean − CrossMean; higher is better. Values
	// above ~0.3 give the pair features a usable margin.
	Separation float64
	// Overlap is the fraction of cross-group pairs whose similarity
	// exceeds the median within-group similarity — the confusable tail.
	Overlap float64
	// OOVRate is the fraction of probe tokens missing from the store.
	OOVRate float64
	Groups  int
}

// String renders the report for CLI output.
func (q QualityReport) String() string {
	return fmt.Sprintf("within=%.3f cross=%.3f separation=%.3f overlap=%.3f oov=%.1f%% (%d groups)",
		q.WithinMean, q.CrossMean, q.Separation, q.Overlap, q.OOVRate*100, q.Groups)
}

// MeasureQuality evaluates the store against synonym groups: each group
// is a set of phrases that should embed close together (e.g. all surface
// names of one reference property).
func (s *Store) MeasureQuality(groups [][]string) QualityReport {
	var rep QualityReport
	rep.Groups = len(groups)
	var within, cross []float64
	var probeTokens, oov int
	vecs := make([][][]float64, len(groups))
	for gi, group := range groups {
		vecs[gi] = make([][]float64, len(group))
		for pi, phrase := range group {
			for _, tok := range text.Tokenize(phrase) {
				probeTokens++
				if !s.Contains(tok) {
					oov++
				}
			}
			vecs[gi][pi] = s.EncodePhrase(phrase)
		}
	}
	for gi := range vecs {
		for i := 0; i < len(vecs[gi]); i++ {
			for j := i + 1; j < len(vecs[gi]); j++ {
				within = append(within, mathx.CosineSimilarity(vecs[gi][i], vecs[gi][j]))
			}
		}
		for gj := gi + 1; gj < len(vecs); gj++ {
			for i := range vecs[gi] {
				for j := range vecs[gj] {
					cross = append(cross, mathx.CosineSimilarity(vecs[gi][i], vecs[gj][j]))
				}
			}
		}
	}
	rep.WithinMean = mathx.Mean(within)
	rep.CrossMean = mathx.Mean(cross)
	rep.Separation = rep.WithinMean - rep.CrossMean
	if len(within) > 0 && len(cross) > 0 {
		med := median(within)
		over := 0
		for _, c := range cross {
			if c > med {
				over++
			}
		}
		rep.Overlap = float64(over) / float64(len(cross))
	}
	if probeTokens > 0 {
		rep.OOVRate = float64(oov) / float64(probeTokens)
	}
	return rep
}

func median(xs []float64) float64 {
	c := append([]float64(nil), xs...)
	sort.Float64s(c)
	n := len(c)
	if n == 0 {
		return 0
	}
	if n%2 == 1 {
		return c[n/2]
	}
	return (c[n/2-1] + c[n/2]) / 2
}
