package embedding

import (
	"errors"
	"math"
	"math/rand"

	"leapme/internal/mathx"
)

// GloVeConfig parameterises the GloVe trainer. The defaults mirror the
// reference implementation of Pennington et al. (2014).
type GloVeConfig struct {
	Dim      int     // embedding dimension (the paper uses 300)
	Window   int     // co-occurrence window size
	MinCount int     // vocabulary frequency cut-off
	Epochs   int     // passes over the co-occurrence pairs
	LR       float64 // initial AdaGrad learning rate
	XMax     float64 // weighting-function saturation point
	Alpha    float64 // weighting-function exponent
	Seed     int64   // RNG seed for init and shuffling
	// NoNormalize serves raw w+w̃ vectors instead of unit-norm ones.
	// Kept for the ablation benches; see the comment at the end of
	// TrainGloVe for why normalisation is the default.
	NoNormalize bool
}

// DefaultGloVeConfig returns the configuration used throughout the
// reproduction: a compact 50-dimensional space (large enough for the
// synthetic domain vocabulary, small enough to train in tests) with the
// reference hyper-parameters.
func DefaultGloVeConfig() GloVeConfig {
	return GloVeConfig{
		Dim:      50,
		Window:   5,
		MinCount: 1,
		Epochs:   30,
		LR:       0.05,
		XMax:     100,
		Alpha:    0.75,
		Seed:     1,
	}
}

// TrainGloVe builds a vocabulary from sentences and fits GloVe vectors by
// AdaGrad on the weighted least-squares objective
//
//	J = Σ f(x_ij) (wᵢ·w̃ⱼ + bᵢ + b̃ⱼ − log x_ij)²
//
// over the distance-weighted co-occurrence counts. The returned Store
// serves wᵢ + w̃ᵢ, the sum of word and context vectors, as the reference
// implementation does.
func TrainGloVe(sentences [][]string, cfg GloVeConfig) (*Store, error) {
	if cfg.Dim <= 0 {
		return nil, errors.New("embedding: GloVe dimension must be positive")
	}
	if cfg.Epochs <= 0 {
		return nil, errors.New("embedding: GloVe epochs must be positive")
	}
	vocab := BuildVocab(sentences, cfg.MinCount)
	if vocab.Size() == 0 {
		return nil, errors.New("embedding: empty vocabulary")
	}
	co := CountCooccurrences(sentences, vocab, cfg.Window)
	if co.NumPairs() == 0 {
		return nil, errors.New("embedding: no co-occurring pairs; corpus too small for window")
	}

	rng := mathx.NewRand(cfg.Seed)
	n, d := vocab.Size(), cfg.Dim
	// Main and context parameter blocks, each with AdaGrad accumulators.
	w := randMatrix(n, d, rng)  // word vectors
	wc := randMatrix(n, d, rng) // context vectors
	b := randVec(n, rng)        // word biases
	bc := randVec(n, rng)       // context biases
	gw := onesMatrix(n, d)      // AdaGrad history for w
	gwc := onesMatrix(n, d)     // AdaGrad history for wc
	gb := onesVec(n)            // AdaGrad history for b
	gbc := onesVec(n)           // AdaGrad history for bc

	examples := co.pairs()
	order := make([]int, len(examples))
	for i := range order {
		order[i] = i
	}

	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		mathx.Shuffle(order, rng)
		for _, idx := range order {
			ex := examples[idx]
			// Each unordered pair is trained in both directions, matching
			// the symmetric counts of the reference implementation.
			gloveStep(w.Row(ex.i), wc.Row(ex.j), &b[ex.i], &bc[ex.j],
				gw.Row(ex.i), gwc.Row(ex.j), &gb[ex.i], &gbc[ex.j], ex.x, cfg)
			if ex.i != ex.j {
				gloveStep(w.Row(ex.j), wc.Row(ex.i), &b[ex.j], &bc[ex.i],
					gw.Row(ex.j), gwc.Row(ex.i), &gb[ex.j], &gbc[ex.i], ex.x, cfg)
			}
		}
	}

	// Serve w + w̃, L2-normalised. GloVe norms grow with corpus frequency,
	// so on a small corpus raw vectors make *rare* unrelated words look
	// close (both tiny) and frequent synonyms look far (both huge); unit
	// norms give the difference-based pair features the same cosine-like
	// geometry the paper's web-scale vectors exhibit for its vocabulary.
	vectors := make([][]float64, n)
	for i := 0; i < n; i++ {
		v := mathx.Add(w.Row(i), wc.Row(i))
		if !cfg.NoNormalize {
			if norm := mathx.Norm2(v); norm > 0 {
				mathx.ScaleTo(v, v, 1/norm)
			}
		}
		vectors[i] = v
	}
	return NewStore(vocab.Words(), vectors)
}

// gloveStep applies one AdaGrad update for a single (word, context) pair.
func gloveStep(wi, wj []float64, bi, bj *float64, gwi, gwj []float64, gbi, gbj *float64, x float64, cfg GloVeConfig) {
	f := weightFn(x, cfg.XMax, cfg.Alpha)
	diff := mathx.Dot(wi, wj) + *bi + *bj - math.Log(x)
	g := f * diff // dJ/d(prediction), up to the factor 2 folded into LR
	for k := range wi {
		gradI := g * wj[k]
		gradJ := g * wi[k]
		wi[k] -= cfg.LR * gradI / math.Sqrt(gwi[k])
		wj[k] -= cfg.LR * gradJ / math.Sqrt(gwj[k])
		gwi[k] += gradI * gradI
		gwj[k] += gradJ * gradJ
	}
	*bi -= cfg.LR * g / math.Sqrt(*gbi)
	*bj -= cfg.LR * g / math.Sqrt(*gbj)
	*gbi += g * g
	*gbj += g * g
}

// weightFn is GloVe's f(x) = (x/xmax)^alpha capped at 1.
func weightFn(x, xmax, alpha float64) float64 {
	if x >= xmax {
		return 1
	}
	return math.Pow(x/xmax, alpha)
}

// randMatrix allocates a rows×cols matrix initialised U(-0.5/cols, 0.5/cols),
// the init range of the reference GloVe implementation.
func randMatrix(rows, cols int, rng *rand.Rand) *mathx.Matrix {
	m := mathx.NewMatrix(rows, cols)
	span := 1 / float64(cols)
	mathx.FillUniform(m.Data, -span/2, span/2, rng)
	return m
}

func randVec(n int, rng *rand.Rand) []float64 {
	v := make([]float64, n)
	mathx.FillUniform(v, -0.5, 0.5, rng)
	return v
}

func onesMatrix(rows, cols int) *mathx.Matrix {
	m := mathx.NewMatrix(rows, cols)
	mathx.Fill(m.Data, 1)
	return m
}

func onesVec(n int) []float64 {
	v := make([]float64, n)
	mathx.Fill(v, 1)
	return v
}
