package embedding

import (
	"math"
	"math/rand"
	"testing"

	"leapme/internal/text"
)

func encodeTestStore(t *testing.T) *Store {
	t.Helper()
	rng := rand.New(rand.NewSource(3))
	words := []string{"camera", "resolution", "hdmi", "port", "24", "mp", "weight", "größe"}
	vecs := make([][]float64, len(words))
	for i := range vecs {
		v := make([]float64, 8)
		for j := range v {
			v[j] = rng.NormFloat64()
		}
		vecs[i] = v
	}
	s, err := NewStore(words, vecs)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestEncodePhraseIntoBitIdentity pins EncodePhraseInto to EncodePhrase
// bit for bit, including phrases that are all-unknown, empty, and mixed
// known/unknown — the zero-vector adds must still happen so signed zeros
// match.
func TestEncodePhraseIntoBitIdentity(t *testing.T) {
	s := encodeTestStore(t)
	phrases := []string{
		"",
		"   ",
		"camera resolution",
		"CameraResolution",
		"HDMIPort weight",
		"24MP",
		"völlig unbekannt phrase",
		"camera unknownword camera",
		"GRÖSSE größe",
	}
	var ts text.TokenScratch
	dst := make([]float64, s.Dim())
	for _, ph := range phrases {
		want := s.EncodePhrase(ph)
		s.EncodePhraseInto(dst, ph, &ts)
		for i := range dst {
			if math.Float64bits(dst[i]) != math.Float64bits(want[i]) {
				t.Fatalf("EncodePhraseInto(%q)[%d] = %x, EncodePhrase = %x",
					ph, i, math.Float64bits(dst[i]), math.Float64bits(want[i]))
			}
		}
	}
}

func TestEncodePhraseIntoWarmAllocs(t *testing.T) {
	s := encodeTestStore(t)
	var ts text.TokenScratch
	dst := make([]float64, s.Dim())
	s.EncodePhraseInto(dst, "camera resolution HDMIPort 24MP unknownword", &ts)
	allocs := testing.AllocsPerRun(100, func() {
		s.EncodePhraseInto(dst, "camera resolution HDMIPort 24MP unknownword", &ts)
	})
	if allocs != 0 {
		t.Fatalf("warm EncodePhraseInto allocated %.1f times per run, want 0", allocs)
	}
}

func TestEncodePhraseIntoPanicsOnBadDim(t *testing.T) {
	s := encodeTestStore(t)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for wrong dst length")
		}
	}()
	var ts text.TokenScratch
	s.EncodePhraseInto(make([]float64, s.Dim()+1), "camera", &ts)
}
