package embedding

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"sort"

	"leapme/internal/mathx"
	"leapme/internal/text"
)

// Store serves trained word vectors. It is immutable after construction
// and safe for concurrent readers.
type Store struct {
	dim     int
	ids     map[string]int
	words   []string
	vectors [][]float64
	zero    []float64 // returned for unknown words, never mutated
}

// NewStore builds a Store from parallel word/vector slices. All vectors
// must share the same non-zero dimension and words must be unique.
func NewStore(words []string, vectors [][]float64) (*Store, error) {
	if len(words) != len(vectors) {
		return nil, fmt.Errorf("embedding: %d words but %d vectors", len(words), len(vectors))
	}
	if len(words) == 0 {
		return nil, errors.New("embedding: empty store")
	}
	dim := len(vectors[0])
	if dim == 0 {
		return nil, errors.New("embedding: zero-dimensional vectors")
	}
	s := &Store{
		dim:     dim,
		ids:     make(map[string]int, len(words)),
		words:   make([]string, len(words)),
		vectors: make([][]float64, len(vectors)),
		zero:    make([]float64, dim),
	}
	for i, w := range words {
		if _, dup := s.ids[w]; dup {
			return nil, fmt.Errorf("embedding: duplicate word %q", w)
		}
		if len(vectors[i]) != dim {
			return nil, fmt.Errorf("embedding: vector %d has dim %d, want %d", i, len(vectors[i]), dim)
		}
		s.ids[w] = i
		s.words[i] = w
		s.vectors[i] = mathx.Clone(vectors[i])
	}
	return s, nil
}

// Dim returns the embedding dimension.
func (s *Store) Dim() int { return s.dim }

// Size returns the number of words in the store.
func (s *Store) Size() int { return len(s.words) }

// Contains reports whether w has a vector.
func (s *Store) Contains(w string) bool {
	_, ok := s.ids[w]
	return ok
}

// Vector returns the vector for w, or the zero vector if w is unknown —
// the paper's convention for out-of-vocabulary words. The returned slice
// must not be modified.
func (s *Store) Vector(w string) []float64 {
	if id, ok := s.ids[w]; ok {
		return s.vectors[id]
	}
	return s.zero
}

// Average returns the mean vector of the given words. Unknown words
// contribute zero vectors but still count in the denominator, matching the
// paper's "unknown words are mapped to a vector filled with zeroes". An
// empty word list yields the zero vector.
func (s *Store) Average(words []string) []float64 {
	out := make([]float64, s.dim)
	if len(words) == 0 {
		return out
	}
	for _, w := range words {
		mathx.AddTo(out, out, s.Vector(w))
	}
	mathx.ScaleTo(out, out, 1/float64(len(words)))
	return out
}

// EncodePhrase tokenizes a free-text phrase and returns the average vector
// of its tokens. This is the operation LEAPME applies to both property
// names and property values.
func (s *Store) EncodePhrase(phrase string) []float64 {
	return s.Average(text.Tokenize(phrase))
}

// EncodePhraseInto is EncodePhrase writing into dst (length Dim)
// through a reusable token scratch instead of allocating: tokens are
// scanned with text.ScanTokens (bit-identical to Tokenize) and looked up
// without converting to string, and the average uses the exact
// accumulation order of Average — zero dst, add each token's vector in
// token order (unknown tokens add the zero vector, which still counts in
// the denominator), then scale once. A warm scratch makes the whole call
// allocation-free; the embedding tests cross-check the bits against
// EncodePhrase.
func (s *Store) EncodePhraseInto(dst []float64, phrase string, ts *text.TokenScratch) {
	if len(dst) != s.dim {
		panic(fmt.Sprintf("embedding: EncodePhraseInto dst has len %d, want %d", len(dst), s.dim))
	}
	mathx.Zero(dst)
	text.ScanTokens(phrase, ts)
	n := ts.Count()
	if n == 0 {
		return
	}
	for i := 0; i < n; i++ {
		vec := s.zero
		if id, ok := s.ids[string(ts.Token(i))]; ok {
			vec = s.vectors[id]
		}
		mathx.AddTo(dst, dst, vec)
	}
	mathx.ScaleTo(dst, dst, 1/float64(n))
}

// Similarity returns the cosine similarity between the vectors of two
// words (0 if either is unknown or zero).
func (s *Store) Similarity(a, b string) float64 {
	return mathx.CosineSimilarity(s.Vector(a), s.Vector(b))
}

// Neighbor is a nearest-neighbour query result.
type Neighbor struct {
	Word string
	Sim  float64
}

// Nearest returns the k words most cosine-similar to w, excluding w
// itself. It returns nil if w is unknown.
func (s *Store) Nearest(w string, k int) []Neighbor {
	id, ok := s.ids[w]
	if !ok || k <= 0 {
		return nil
	}
	q := s.vectors[id]
	out := make([]Neighbor, 0, len(s.words)-1)
	for i, v := range s.vectors {
		if i == id {
			continue
		}
		out = append(out, Neighbor{Word: s.words[i], Sim: mathx.CosineSimilarity(q, v)})
	}
	sort.Slice(out, func(a, b int) bool {
		//lint:allow floateq sort tie-break must be an exact total order; a tolerance comparator is not a strict weak ordering
		if out[a].Sim != out[b].Sim {
			return out[a].Sim > out[b].Sim
		}
		return out[a].Word < out[b].Word
	})
	if k < len(out) {
		out = out[:k]
	}
	return out
}

// Words returns all words in the store in id order. The slice must not be
// modified.
func (s *Store) Words() []string { return s.words }

// storeMagic identifies the binary serialisation format.
const storeMagic = "LEAPMEv1"

// WriteTo serialises the store in a compact binary format:
// magic, dim, count, then length-prefixed words each followed by dim
// float64s in little-endian order.
func (s *Store) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	count := func(k int, err error) error {
		n += int64(k)
		return err
	}
	if err := count(bw.WriteString(storeMagic)); err != nil {
		return n, err
	}
	hdr := make([]byte, 8)
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(s.dim))
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(len(s.words)))
	if err := count(bw.Write(hdr)); err != nil {
		return n, err
	}
	buf := make([]byte, 8)
	for i, word := range s.words {
		binary.LittleEndian.PutUint32(buf[:4], uint32(len(word)))
		if err := count(bw.Write(buf[:4])); err != nil {
			return n, err
		}
		if err := count(bw.WriteString(word)); err != nil {
			return n, err
		}
		for _, x := range s.vectors[i] {
			binary.LittleEndian.PutUint64(buf, math.Float64bits(x))
			if err := count(bw.Write(buf)); err != nil {
				return n, err
			}
		}
	}
	return n, bw.Flush()
}

// ReadStore deserialises a store written by WriteTo.
func ReadStore(r io.Reader) (*Store, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(storeMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("embedding: reading magic: %w", err)
	}
	if string(magic) != storeMagic {
		return nil, fmt.Errorf("embedding: bad magic %q", magic)
	}
	hdr := make([]byte, 8)
	if _, err := io.ReadFull(br, hdr); err != nil {
		return nil, fmt.Errorf("embedding: reading header: %w", err)
	}
	dim := int(binary.LittleEndian.Uint32(hdr[0:4]))
	n := int(binary.LittleEndian.Uint32(hdr[4:8]))
	if dim <= 0 || n <= 0 || dim > 1<<20 || n > 1<<28 {
		return nil, fmt.Errorf("embedding: implausible header dim=%d n=%d", dim, n)
	}
	words := make([]string, n)
	vectors := make([][]float64, n)
	buf := make([]byte, 8)
	for i := 0; i < n; i++ {
		if _, err := io.ReadFull(br, buf[:4]); err != nil {
			return nil, fmt.Errorf("embedding: reading word %d length: %w", i, err)
		}
		wlen := int(binary.LittleEndian.Uint32(buf[:4]))
		if wlen < 0 || wlen > 1<<16 {
			return nil, fmt.Errorf("embedding: implausible word length %d", wlen)
		}
		wb := make([]byte, wlen)
		if _, err := io.ReadFull(br, wb); err != nil {
			return nil, fmt.Errorf("embedding: reading word %d: %w", i, err)
		}
		words[i] = string(wb)
		vec := make([]float64, dim)
		for j := 0; j < dim; j++ {
			if _, err := io.ReadFull(br, buf); err != nil {
				return nil, fmt.Errorf("embedding: reading vector %d[%d]: %w", i, j, err)
			}
			vec[j] = math.Float64frombits(binary.LittleEndian.Uint64(buf))
		}
		vectors[i] = vec
	}
	return NewStore(words, vectors)
}
