package embedding

import (
	"errors"
	"math"

	"leapme/internal/mathx"
)

// SGNSConfig parameterises the skip-gram-with-negative-sampling trainer
// (Mikolov et al. 2013), provided as an alternative embedding backend so
// the reproduction can ablate the choice of embedding algorithm.
type SGNSConfig struct {
	Dim       int     // embedding dimension
	Window    int     // maximum skip-gram window
	MinCount  int     // vocabulary cut-off
	Epochs    int     // passes over the corpus
	LR        float64 // initial SGD learning rate, decayed linearly
	Negatives int     // negative samples per positive
	Seed      int64
}

// DefaultSGNSConfig returns sensible small-corpus defaults.
func DefaultSGNSConfig() SGNSConfig {
	return SGNSConfig{
		Dim:       50,
		Window:    5,
		MinCount:  1,
		Epochs:    15,
		LR:        0.025,
		Negatives: 5,
		Seed:      1,
	}
}

// TrainSGNS fits word2vec skip-gram embeddings with negative sampling.
// Negative words are drawn from the unigram distribution raised to 3/4,
// as in the original implementation.
func TrainSGNS(sentences [][]string, cfg SGNSConfig) (*Store, error) {
	if cfg.Dim <= 0 || cfg.Epochs <= 0 {
		return nil, errors.New("embedding: SGNS dim and epochs must be positive")
	}
	if cfg.Negatives < 1 {
		cfg.Negatives = 1
	}
	vocab := BuildVocab(sentences, cfg.MinCount)
	if vocab.Size() == 0 {
		return nil, errors.New("embedding: empty vocabulary")
	}

	rng := mathx.NewRand(cfg.Seed)
	n, d := vocab.Size(), cfg.Dim
	w := randMatrix(n, d, rng)  // input vectors (served)
	wc := mathx.NewMatrix(n, d) // output vectors, zero-initialised as in word2vec

	sampler := newUnigramSampler(vocab)

	// Pre-encode the corpus as id sequences.
	var corpus [][]int
	totalTokens := 0
	for _, sent := range sentences {
		ids := make([]int, 0, len(sent))
		for _, word := range sent {
			if id, ok := vocab.ID(word); ok {
				ids = append(ids, id)
			}
		}
		if len(ids) > 1 {
			corpus = append(corpus, ids)
			totalTokens += len(ids)
		}
	}
	if totalTokens == 0 {
		return nil, errors.New("embedding: corpus has no in-vocabulary tokens")
	}

	grad := make([]float64, d)
	steps, totalSteps := 0, cfg.Epochs*totalTokens
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		for _, ids := range corpus {
			for i, center := range ids {
				// Linear learning-rate decay with a floor, as in word2vec.
				lr := cfg.LR * (1 - float64(steps)/float64(totalSteps+1))
				if lr < cfg.LR*1e-4 {
					lr = cfg.LR * 1e-4
				}
				steps++
				// Randomly shrunk window, as in word2vec.
				win := 1 + rng.Intn(cfg.Window)
				lo, hi := i-win, i+win
				if lo < 0 {
					lo = 0
				}
				if hi >= len(ids) {
					hi = len(ids) - 1
				}
				for j := lo; j <= hi; j++ {
					if j == i {
						continue
					}
					ctx := ids[j]
					mathx.Zero(grad)
					vIn := w.Row(center)
					// Positive example.
					sgnsUpdate(vIn, wc.Row(ctx), 1, lr, grad)
					// Negative examples.
					for k := 0; k < cfg.Negatives; k++ {
						neg := sampler.sample(rng)
						if neg == ctx {
							continue
						}
						sgnsUpdate(vIn, wc.Row(neg), 0, lr, grad)
					}
					mathx.AddTo(vIn, vIn, grad)
				}
			}
		}
	}

	// Serve unit-norm vectors for the same reason as the GloVe trainer:
	// frequency-dependent norms distort difference-based features.
	vectors := make([][]float64, n)
	for i := 0; i < n; i++ {
		v := mathx.Clone(w.Row(i))
		if norm := mathx.Norm2(v); norm > 0 {
			mathx.ScaleTo(v, v, 1/norm)
		}
		vectors[i] = v
	}
	return NewStore(vocab.Words(), vectors)
}

// sgnsUpdate applies one logistic-loss step for (input, output) with the
// given label, updating the output vector in place and accumulating the
// input-vector gradient into grad.
func sgnsUpdate(vIn, vOut []float64, label float64, lr float64, grad []float64) {
	score := sigmoid(mathx.Dot(vIn, vOut))
	g := lr * (label - score)
	mathx.AxpyTo(grad, g, vOut)
	mathx.AxpyTo(vOut, g, vIn)
}

func sigmoid(x float64) float64 {
	if x > 30 {
		return 1
	}
	if x < -30 {
		return 0
	}
	return 1 / (1 + math.Exp(-x))
}

// unigramSampler draws word ids proportionally to count^(3/4) using a
// cumulative table and binary search.
type unigramSampler struct {
	cum []float64
}

func newUnigramSampler(v *Vocab) *unigramSampler {
	cum := make([]float64, v.Size())
	var total float64
	for i := 0; i < v.Size(); i++ {
		total += math.Pow(float64(v.Count(i)), 0.75)
		cum[i] = total
	}
	return &unigramSampler{cum: cum}
}

func (s *unigramSampler) sample(rng interface{ Float64() float64 }) int {
	if len(s.cum) == 0 {
		return 0
	}
	x := rng.Float64() * s.cum[len(s.cum)-1]
	lo, hi := 0, len(s.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if s.cum[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
