package embedding

import (
	"bytes"
	"math/rand"
	"testing"

	"leapme/internal/mathx"
)

// synonymCorpus builds a corpus with two synonym groups that co-occur with
// distinct context words, so a sound trainer must embed same-group words
// closer together than cross-group words.
func synonymCorpus(n int, seed int64) [][]string {
	groupA := []string{"megapixels", "mp", "resolution"}
	groupB := []string{"weight", "mass", "grams"}
	ctxA := []string{"image", "sensor", "photo", "pixels"}
	ctxB := []string{"heavy", "light", "body", "kg"}
	rng := rand.New(rand.NewSource(seed))
	var out [][]string
	for i := 0; i < n; i++ {
		a := groupA[rng.Intn(len(groupA))]
		b := groupB[rng.Intn(len(groupB))]
		out = append(out,
			[]string{"the", "camera", a, ctxA[rng.Intn(len(ctxA))], ctxA[rng.Intn(len(ctxA))]},
			[]string{"the", "camera", b, ctxB[rng.Intn(len(ctxB))], ctxB[rng.Intn(len(ctxB))]},
		)
	}
	return out
}

// checkSynonymGeometry asserts that within-group similarity beats
// cross-group similarity for the trained store.
func checkSynonymGeometry(t *testing.T, s *Store, trainer string) {
	t.Helper()
	within := (s.Similarity("megapixels", "mp") + s.Similarity("mp", "resolution")) / 2
	cross := (s.Similarity("megapixels", "weight") + s.Similarity("mp", "grams")) / 2
	if within <= cross {
		t.Errorf("%s: within-group sim %.3f not above cross-group %.3f", trainer, within, cross)
	}
}

func TestTrainGloVeSynonymGeometry(t *testing.T) {
	cfg := DefaultGloVeConfig()
	cfg.Dim = 16
	cfg.Epochs = 40
	s, err := TrainGloVe(synonymCorpus(150, 7), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if s.Dim() != 16 {
		t.Fatalf("dim = %d", s.Dim())
	}
	checkSynonymGeometry(t, s, "glove")
}

func TestTrainSGNSSynonymGeometry(t *testing.T) {
	cfg := DefaultSGNSConfig()
	cfg.Dim = 16
	cfg.Epochs = 20
	s, err := TrainSGNS(synonymCorpus(150, 7), cfg)
	if err != nil {
		t.Fatal(err)
	}
	checkSynonymGeometry(t, s, "sgns")
}

func TestTrainGloVeDeterministic(t *testing.T) {
	cfg := DefaultGloVeConfig()
	cfg.Dim = 8
	cfg.Epochs = 3
	corpus := synonymCorpus(20, 3)
	a, err := TrainGloVe(corpus, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := TrainGloVe(corpus, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range a.Words() {
		va, vb := a.Vector(w), b.Vector(w)
		for i := range va {
			if va[i] != vb[i] {
				t.Fatalf("non-deterministic training for word %q", w)
			}
		}
	}
}

func TestTrainGloVeErrors(t *testing.T) {
	if _, err := TrainGloVe(nil, DefaultGloVeConfig()); err == nil {
		t.Error("empty corpus should error")
	}
	cfg := DefaultGloVeConfig()
	cfg.Dim = 0
	if _, err := TrainGloVe(synonymCorpus(5, 1), cfg); err == nil {
		t.Error("zero dim should error")
	}
	cfg = DefaultGloVeConfig()
	cfg.Epochs = 0
	if _, err := TrainGloVe(synonymCorpus(5, 1), cfg); err == nil {
		t.Error("zero epochs should error")
	}
	// Single-word sentences have no co-occurrences.
	if _, err := TrainGloVe([][]string{{"lonely"}}, DefaultGloVeConfig()); err == nil {
		t.Error("no-pair corpus should error")
	}
}

func TestTrainSGNSErrors(t *testing.T) {
	if _, err := TrainSGNS(nil, DefaultSGNSConfig()); err == nil {
		t.Error("empty corpus should error")
	}
	cfg := DefaultSGNSConfig()
	cfg.Dim = -1
	if _, err := TrainSGNS(synonymCorpus(5, 1), cfg); err == nil {
		t.Error("negative dim should error")
	}
}

func TestStoreBasics(t *testing.T) {
	s, err := NewStore([]string{"a", "b"}, [][]float64{{1, 0}, {0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if !s.Contains("a") || s.Contains("zz") {
		t.Error("Contains broken")
	}
	if v := s.Vector("zz"); mathx.Norm2(v) != 0 {
		t.Error("unknown word should map to zero vector")
	}
	if got := s.Similarity("a", "b"); got != 0 {
		t.Errorf("orthogonal sim = %v", got)
	}
}

func TestStoreValidation(t *testing.T) {
	if _, err := NewStore([]string{"a"}, [][]float64{{1}, {2}}); err == nil {
		t.Error("mismatched lengths should error")
	}
	if _, err := NewStore(nil, nil); err == nil {
		t.Error("empty store should error")
	}
	if _, err := NewStore([]string{"a", "a"}, [][]float64{{1}, {2}}); err == nil {
		t.Error("duplicate words should error")
	}
	if _, err := NewStore([]string{"a", "b"}, [][]float64{{1}, {2, 3}}); err == nil {
		t.Error("ragged vectors should error")
	}
	if _, err := NewStore([]string{"a"}, [][]float64{{}}); err == nil {
		t.Error("zero-dim vectors should error")
	}
}

func TestStoreAverage(t *testing.T) {
	s, _ := NewStore([]string{"a", "b"}, [][]float64{{2, 0}, {0, 2}})
	avg := s.Average([]string{"a", "b"})
	if avg[0] != 1 || avg[1] != 1 {
		t.Errorf("Average = %v", avg)
	}
	// Unknown words count in the denominator (paper: zero vector).
	avg = s.Average([]string{"a", "unknown"})
	if avg[0] != 1 || avg[1] != 0 {
		t.Errorf("Average with unknown = %v", avg)
	}
	if z := s.Average(nil); mathx.Norm2(z) != 0 {
		t.Error("empty average should be zero vector")
	}
}

func TestEncodePhrase(t *testing.T) {
	s, _ := NewStore([]string{"camera", "resolution"}, [][]float64{{1, 0}, {0, 1}})
	v := s.EncodePhrase("Camera-RESOLUTION")
	if v[0] != 0.5 || v[1] != 0.5 {
		t.Errorf("EncodePhrase = %v", v)
	}
}

func TestNearest(t *testing.T) {
	s, _ := NewStore(
		[]string{"a", "b", "c"},
		[][]float64{{1, 0}, {0.9, 0.1}, {0, 1}},
	)
	nn := s.Nearest("a", 2)
	if len(nn) != 2 || nn[0].Word != "b" {
		t.Errorf("Nearest = %+v", nn)
	}
	if s.Nearest("absent", 2) != nil {
		t.Error("Nearest of unknown word should be nil")
	}
	if s.Nearest("a", 0) != nil {
		t.Error("Nearest with k=0 should be nil")
	}
}

func TestStoreRoundTrip(t *testing.T) {
	cfg := DefaultGloVeConfig()
	cfg.Dim = 8
	cfg.Epochs = 2
	s, err := TrainGloVe(synonymCorpus(10, 9), cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadStore(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Dim() != s.Dim() || got.Size() != s.Size() {
		t.Fatalf("round trip changed shape: %dx%d vs %dx%d", got.Size(), got.Dim(), s.Size(), s.Dim())
	}
	for _, w := range s.Words() {
		va, vb := s.Vector(w), got.Vector(w)
		for i := range va {
			if va[i] != vb[i] {
				t.Fatalf("round trip changed vector for %q", w)
			}
		}
	}
}

func TestReadStoreBadInput(t *testing.T) {
	if _, err := ReadStore(bytes.NewReader([]byte("garbage data here"))); err == nil {
		t.Error("bad magic should error")
	}
	if _, err := ReadStore(bytes.NewReader(nil)); err == nil {
		t.Error("empty input should error")
	}
	// Truncated payload after a valid header.
	var buf bytes.Buffer
	s, _ := NewStore([]string{"a"}, [][]float64{{1, 2}})
	s.WriteTo(&buf)
	trunc := buf.Bytes()[:buf.Len()-4]
	if _, err := ReadStore(bytes.NewReader(trunc)); err == nil {
		t.Error("truncated input should error")
	}
}

func TestUnigramSampler(t *testing.T) {
	v := BuildVocab([][]string{{"a", "a", "a", "a", "b"}}, 1)
	s := newUnigramSampler(v)
	rng := mathx.NewRand(1)
	counts := map[int]int{}
	for i := 0; i < 10000; i++ {
		counts[s.sample(rng)]++
	}
	idA, _ := v.ID("a")
	idB, _ := v.ID("b")
	if counts[idA] <= counts[idB] {
		t.Errorf("sampler should favour frequent words: a=%d b=%d", counts[idA], counts[idB])
	}
	if counts[idB] == 0 {
		t.Error("rare word never sampled")
	}
}
