package embedding

import "sort"

// Cooccurrence holds the sparse, symmetric word-word co-occurrence counts
// GloVe trains on. Counts are weighted by 1/d for a pair of words at
// distance d inside the context window, as in the reference implementation.
type Cooccurrence struct {
	vocab *Vocab
	cells map[[2]int]float64
}

// CountCooccurrences scans sentences with a symmetric window of the given
// size and accumulates distance-weighted counts for in-vocabulary pairs.
func CountCooccurrences(sentences [][]string, vocab *Vocab, window int) *Cooccurrence {
	if window < 1 {
		window = 1
	}
	co := &Cooccurrence{vocab: vocab, cells: map[[2]int]float64{}}
	for _, sent := range sentences {
		ids := make([]int, 0, len(sent))
		for _, w := range sent {
			if id, ok := vocab.ID(w); ok {
				ids = append(ids, id)
			}
		}
		for i, wi := range ids {
			hi := i + window
			if hi >= len(ids) {
				hi = len(ids) - 1
			}
			for j := i + 1; j <= hi; j++ {
				weight := 1 / float64(j-i)
				co.add(wi, ids[j], weight)
			}
		}
	}
	return co
}

// add accumulates weight symmetrically for the unordered pair {a, b}.
func (co *Cooccurrence) add(a, b int, weight float64) {
	if a > b {
		a, b = b, a
	}
	co.cells[[2]int{a, b}] += weight
}

// NumPairs returns the number of distinct unordered co-occurring pairs.
func (co *Cooccurrence) NumPairs() int { return len(co.cells) }

// Get returns the accumulated count for the unordered pair {a, b}.
func (co *Cooccurrence) Get(a, b int) float64 {
	if a > b {
		a, b = b, a
	}
	return co.cells[[2]int{a, b}]
}

// pair is one training example for the GloVe objective.
type pair struct {
	i, j int
	x    float64
}

// pairs materialises the cell map as a slice in a deterministic order so
// that training with a fixed seed is fully reproducible (map iteration
// order is randomised in Go).
func (co *Cooccurrence) pairs() []pair {
	out := make([]pair, 0, len(co.cells))
	for k, x := range co.cells {
		out = append(out, pair{k[0], k[1], x})
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].i != out[b].i {
			return out[a].i < out[b].i
		}
		return out[a].j < out[b].j
	})
	return out
}
