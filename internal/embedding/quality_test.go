package embedding

import (
	"testing"
)

func TestMeasureQualitySeparatesGroups(t *testing.T) {
	cfg := DefaultGloVeConfig()
	cfg.Dim = 16
	cfg.Epochs = 40
	s, err := TrainGloVe(synonymCorpus(150, 7), cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep := s.MeasureQuality([][]string{
		{"megapixels", "mp", "resolution"},
		{"weight", "mass", "grams"},
	})
	if rep.Groups != 2 {
		t.Errorf("groups = %d", rep.Groups)
	}
	if rep.Separation <= 0 {
		t.Errorf("separation = %v, want positive", rep.Separation)
	}
	if rep.WithinMean <= rep.CrossMean {
		t.Errorf("within %v should exceed cross %v", rep.WithinMean, rep.CrossMean)
	}
	if rep.OOVRate != 0 {
		t.Errorf("oov = %v for all-known probes", rep.OOVRate)
	}
	if rep.Overlap < 0 || rep.Overlap > 1 {
		t.Errorf("overlap = %v", rep.Overlap)
	}
}

func TestMeasureQualityOOV(t *testing.T) {
	s, _ := NewStore([]string{"known"}, [][]float64{{1, 0}})
	rep := s.MeasureQuality([][]string{{"known", "unknown"}})
	if rep.OOVRate != 0.5 {
		t.Errorf("OOVRate = %v, want 0.5", rep.OOVRate)
	}
}

func TestMeasureQualityEmpty(t *testing.T) {
	s, _ := NewStore([]string{"w"}, [][]float64{{1}})
	rep := s.MeasureQuality(nil)
	if rep.Groups != 0 || rep.Separation != 0 {
		t.Errorf("empty report = %+v", rep)
	}
}

func TestMedian(t *testing.T) {
	if median([]float64{3, 1, 2}) != 2 {
		t.Error("odd median")
	}
	if median([]float64{1, 2, 3, 4}) != 2.5 {
		t.Error("even median")
	}
	if median(nil) != 0 {
		t.Error("empty median")
	}
}
