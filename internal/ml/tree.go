package ml

import (
	"fmt"
	"sort"
)

// DecisionTree is a CART-style binary classification tree with Gini
// impurity splits.
type DecisionTree struct {
	// MaxDepth bounds tree depth (<=0 means unlimited).
	MaxDepth int
	// MinLeaf is the minimum examples per leaf (default 1).
	MinLeaf int

	root *treeNode
	dim  int
}

type treeNode struct {
	feature  int
	thresh   float64
	left     *treeNode
	right    *treeNode
	leafProb float64 // P(class 1) at a leaf
	isLeaf   bool
}

// Name implements Classifier.
func (t *DecisionTree) Name() string {
	return fmt.Sprintf("cart(maxDepth=%d,minLeaf=%d)", t.MaxDepth, t.MinLeaf)
}

// Fit implements Classifier.
func (t *DecisionTree) Fit(xs [][]float64, ys []int) error {
	dim, err := validate(xs, ys)
	if err != nil {
		return err
	}
	if t.MinLeaf <= 0 {
		t.MinLeaf = 1
	}
	t.dim = dim
	idx := make([]int, len(xs))
	for i := range idx {
		idx[i] = i
	}
	t.root = t.build(xs, ys, idx, 0)
	return nil
}

func (t *DecisionTree) build(xs [][]float64, ys []int, idx []int, depth int) *treeNode {
	pos := 0
	for _, i := range idx {
		pos += ys[i]
	}
	prob := float64(pos) / float64(len(idx))
	if pos == 0 || pos == len(idx) ||
		(t.MaxDepth > 0 && depth >= t.MaxDepth) ||
		len(idx) < 2*t.MinLeaf {
		return &treeNode{isLeaf: true, leafProb: prob}
	}

	bestFeat, bestThresh, bestGini := -1, 0.0, giniOf(pos, len(idx))
	sorted := make([]int, len(idx))
	for f := 0; f < t.dim; f++ {
		copy(sorted, idx)
		sort.Slice(sorted, func(a, b int) bool { return xs[sorted[a]][f] < xs[sorted[b]][f] })
		leftPos, leftN := 0, 0
		for k := 0; k < len(sorted)-1; k++ {
			leftPos += ys[sorted[k]]
			leftN++
			//lint:allow floateq identical feature values admit no split point between them; exact identity is the point
			if xs[sorted[k]][f] == xs[sorted[k+1]][f] {
				continue // can't split between equal values
			}
			if leftN < t.MinLeaf || len(sorted)-leftN < t.MinLeaf {
				continue
			}
			rightPos, rightN := pos-leftPos, len(sorted)-leftN
			g := (float64(leftN)*giniOf(leftPos, leftN) + float64(rightN)*giniOf(rightPos, rightN)) / float64(len(sorted))
			if g < bestGini-1e-12 {
				bestGini = g
				bestFeat = f
				bestThresh = (xs[sorted[k]][f] + xs[sorted[k+1]][f]) / 2
			}
		}
	}
	if bestFeat < 0 {
		return &treeNode{isLeaf: true, leafProb: prob}
	}
	var leftIdx, rightIdx []int
	for _, i := range idx {
		if xs[i][bestFeat] <= bestThresh {
			leftIdx = append(leftIdx, i)
		} else {
			rightIdx = append(rightIdx, i)
		}
	}
	return &treeNode{
		feature: bestFeat,
		thresh:  bestThresh,
		left:    t.build(xs, ys, leftIdx, depth+1),
		right:   t.build(xs, ys, rightIdx, depth+1),
	}
}

func giniOf(pos, n int) float64 {
	if n == 0 {
		return 0
	}
	p := float64(pos) / float64(n)
	return 2 * p * (1 - p)
}

// PredictProba implements Classifier.
func (t *DecisionTree) PredictProba(x []float64) float64 {
	node := t.root
	if node == nil {
		return 0.5
	}
	for !node.isLeaf {
		if x[node.feature] <= node.thresh {
			node = node.left
		} else {
			node = node.right
		}
	}
	return node.leafProb
}

// Depth returns the depth of the fitted tree (0 for a single leaf).
func (t *DecisionTree) Depth() int { return depthOf(t.root) }

func depthOf(n *treeNode) int {
	if n == nil || n.isLeaf {
		return 0
	}
	l, r := depthOf(n.left), depthOf(n.right)
	if l > r {
		return l + 1
	}
	return r + 1
}
