// Package ml implements the classic supervised classifiers used by the
// Nezhadi et al. baseline (ontology alignment with machine learning over
// string-similarity features): a CART decision tree, AdaBoost over decision
// stumps, k-nearest-neighbours, Gaussian naive Bayes and logistic
// regression. All are binary classifiers exposing a positive-class
// probability, mirroring LEAPME's use of the network's positive output as
// a similarity score.
package ml

import (
	"errors"
	"fmt"
)

// Classifier is a trainable binary classifier.
type Classifier interface {
	// Fit trains on feature vectors xs with labels ys in {0, 1}.
	Fit(xs [][]float64, ys []int) error
	// PredictProba returns the estimated probability of class 1.
	PredictProba(x []float64) float64
	// Name identifies the classifier.
	Name() string
}

// Predict returns the hard class under threshold 0.5.
func Predict(c Classifier, x []float64) int {
	if c.PredictProba(x) >= 0.5 {
		return 1
	}
	return 0
}

// validate checks a common precondition for all Fit implementations.
func validate(xs [][]float64, ys []int) (dim int, err error) {
	if len(xs) == 0 {
		return 0, errors.New("ml: empty training set")
	}
	if len(xs) != len(ys) {
		return 0, fmt.Errorf("ml: %d examples but %d labels", len(xs), len(ys))
	}
	dim = len(xs[0])
	if dim == 0 {
		return 0, errors.New("ml: zero-dimensional features")
	}
	for i, x := range xs {
		if len(x) != dim {
			return 0, fmt.Errorf("ml: example %d has dim %d, want %d", i, len(x), dim)
		}
		if ys[i] != 0 && ys[i] != 1 {
			return 0, fmt.Errorf("ml: label %d of example %d not in {0,1}", ys[i], i)
		}
	}
	return dim, nil
}
