package ml

import (
	"math"
	"testing"

	"leapme/internal/mathx"
)

// blobs returns two well-separated Gaussian blobs — linearly separable.
func blobs(n int, seed int64) ([][]float64, []int) {
	rng := mathx.NewRand(seed)
	var xs [][]float64
	var ys []int
	for i := 0; i < n; i++ {
		c := i % 2
		cx := float64(c)*4 - 2
		xs = append(xs, []float64{cx + rng.NormFloat64()*0.7, cx + rng.NormFloat64()*0.7})
		ys = append(ys, c)
	}
	return xs, ys
}

// rings returns a non-linear problem: class 1 inside a ring, class 0 outside.
func rings(n int, seed int64) ([][]float64, []int) {
	rng := mathx.NewRand(seed)
	var xs [][]float64
	var ys []int
	for i := 0; i < n; i++ {
		x := rng.Float64()*4 - 2
		y := rng.Float64()*4 - 2
		label := 0
		if x*x+y*y < 1 {
			label = 1
		}
		xs = append(xs, []float64{x, y})
		ys = append(ys, label)
	}
	return xs, ys
}

func accuracy(c Classifier, xs [][]float64, ys []int) float64 {
	correct := 0
	for i, x := range xs {
		if Predict(c, x) == ys[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(xs))
}

func allClassifiers() []Classifier {
	return []Classifier{
		&DecisionTree{MaxDepth: 8},
		&AdaBoost{Rounds: 40},
		&KNN{K: 5},
		&GaussianNB{},
		&LogisticRegression{Iters: 300},
	}
}

func TestAllLearnBlobs(t *testing.T) {
	xs, ys := blobs(200, 1)
	for _, c := range allClassifiers() {
		if err := c.Fit(xs, ys); err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
		if acc := accuracy(c, xs, ys); acc < 0.95 {
			t.Errorf("%s: blob accuracy %.3f < 0.95", c.Name(), acc)
		}
	}
}

func TestNonLinearLearners(t *testing.T) {
	xs, ys := rings(400, 2)
	nonlinear := []Classifier{
		&DecisionTree{MaxDepth: 10},
		&AdaBoost{Rounds: 100},
		&KNN{K: 7},
	}
	for _, c := range nonlinear {
		if err := c.Fit(xs, ys); err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
		if acc := accuracy(c, xs, ys); acc < 0.9 {
			t.Errorf("%s: ring accuracy %.3f < 0.9", c.Name(), acc)
		}
	}
	// Logistic regression cannot solve a ring — documents the contrast.
	lr := &LogisticRegression{Iters: 300}
	if err := lr.Fit(xs, ys); err != nil {
		t.Fatal(err)
	}
	if acc := accuracy(lr, xs, ys); acc > 0.9 {
		t.Errorf("logreg suspiciously good on rings (%.3f); test data degenerate?", acc)
	}
}

func TestValidationErrors(t *testing.T) {
	for _, c := range allClassifiers() {
		if err := c.Fit(nil, nil); err == nil {
			t.Errorf("%s: empty training set accepted", c.Name())
		}
		if err := c.Fit([][]float64{{1}}, []int{0, 1}); err == nil {
			t.Errorf("%s: mismatched labels accepted", c.Name())
		}
		if err := c.Fit([][]float64{{1}, {1, 2}}, []int{0, 1}); err == nil {
			t.Errorf("%s: ragged features accepted", c.Name())
		}
		if err := c.Fit([][]float64{{1}}, []int{3}); err == nil {
			t.Errorf("%s: non-binary label accepted", c.Name())
		}
	}
}

func TestProbaBounds(t *testing.T) {
	xs, ys := blobs(100, 3)
	for _, c := range allClassifiers() {
		if err := c.Fit(xs, ys); err != nil {
			t.Fatal(err)
		}
		for _, x := range xs {
			p := c.PredictProba(x)
			if p < 0 || p > 1 || math.IsNaN(p) {
				t.Errorf("%s: probability %v outside [0,1]", c.Name(), p)
			}
		}
	}
}

func TestUnfittedPredictIsNeutral(t *testing.T) {
	for _, c := range allClassifiers() {
		if p := c.PredictProba([]float64{1, 2}); p != 0.5 {
			t.Errorf("%s: unfitted proba = %v, want 0.5", c.Name(), p)
		}
	}
}

func TestTreePureLeaf(t *testing.T) {
	tr := &DecisionTree{}
	xs := [][]float64{{1}, {2}, {3}}
	ys := []int{1, 1, 1}
	if err := tr.Fit(xs, ys); err != nil {
		t.Fatal(err)
	}
	if tr.Depth() != 0 {
		t.Errorf("pure training set should yield a single leaf, depth=%d", tr.Depth())
	}
	if p := tr.PredictProba([]float64{99}); p != 1 {
		t.Errorf("pure-positive leaf proba = %v", p)
	}
}

func TestTreeMaxDepthRespected(t *testing.T) {
	xs, ys := rings(300, 4)
	tr := &DecisionTree{MaxDepth: 3}
	if err := tr.Fit(xs, ys); err != nil {
		t.Fatal(err)
	}
	if tr.Depth() > 3 {
		t.Errorf("depth %d exceeds MaxDepth 3", tr.Depth())
	}
}

func TestTreeConstantFeature(t *testing.T) {
	// A constant feature offers no split; the tree must not loop forever.
	xs := [][]float64{{1, 5}, {1, 6}, {1, 7}, {1, 8}}
	ys := []int{0, 0, 1, 1}
	tr := &DecisionTree{}
	if err := tr.Fit(xs, ys); err != nil {
		t.Fatal(err)
	}
	if Predict(tr, []float64{1, 5}) != 0 || Predict(tr, []float64{1, 8}) != 1 {
		t.Error("tree failed to use the informative feature")
	}
}

func TestAdaBoostMargins(t *testing.T) {
	xs, ys := blobs(100, 5)
	ab := &AdaBoost{Rounds: 30}
	if err := ab.Fit(xs, ys); err != nil {
		t.Fatal(err)
	}
	// Confidently classified points should have proba far from 0.5.
	p := ab.PredictProba([]float64{-2, -2})
	if p > 0.2 {
		t.Errorf("deep class-0 point proba = %v", p)
	}
	p = ab.PredictProba([]float64{2, 2})
	if p < 0.8 {
		t.Errorf("deep class-1 point proba = %v", p)
	}
}

func TestKNNSmallK(t *testing.T) {
	knn := &KNN{K: 1}
	xs := [][]float64{{0}, {10}}
	ys := []int{0, 1}
	if err := knn.Fit(xs, ys); err != nil {
		t.Fatal(err)
	}
	if Predict(knn, []float64{1}) != 0 || Predict(knn, []float64{9}) != 1 {
		t.Error("1-NN misclassifies obvious points")
	}
	// K larger than the training set must not panic.
	knn2 := &KNN{K: 50}
	knn2.Fit(xs, ys)
	if p := knn2.PredictProba([]float64{5}); p != 0.5 {
		t.Errorf("K>n proba = %v, want 0.5 (both neighbours)", p)
	}
}

func TestGaussianNBSkewedPriors(t *testing.T) {
	// 90% negatives: prior must pull ambiguous points negative.
	rng := mathx.NewRand(6)
	var xs [][]float64
	var ys []int
	for i := 0; i < 200; i++ {
		label := 0
		if i%10 == 0 {
			label = 1
		}
		xs = append(xs, []float64{rng.NormFloat64()}) // identical class distributions
		ys = append(ys, label)
	}
	nb := &GaussianNB{}
	if err := nb.Fit(xs, ys); err != nil {
		t.Fatal(err)
	}
	if p := nb.PredictProba([]float64{0}); p > 0.3 {
		t.Errorf("skewed-prior proba = %v, want ≈0.1", p)
	}
}

func TestLogisticRegressionWeightsSign(t *testing.T) {
	xs, ys := blobs(200, 7)
	lr := &LogisticRegression{Iters: 400}
	if err := lr.Fit(xs, ys); err != nil {
		t.Fatal(err)
	}
	// Class 1 lives at (+2,+2): both weights must be positive.
	if lr.w[0] <= 0 || lr.w[1] <= 0 {
		t.Errorf("weights = %v, want positive", lr.w)
	}
}

func TestNames(t *testing.T) {
	for _, c := range allClassifiers() {
		if c.Name() == "" {
			t.Error("classifier with empty name")
		}
	}
}
