package ml

import (
	"fmt"
	"math"
	"sort"
)

// AdaBoost implements discrete AdaBoost over depth-1 decision stumps.
type AdaBoost struct {
	// Rounds is the number of boosting rounds (default 50).
	Rounds int

	stumps []stump
	alphas []float64
}

type stump struct {
	feature int
	thresh  float64
	// polarity +1 predicts class 1 for x > thresh, -1 the reverse.
	polarity int
}

func (s stump) predict(x []float64) int { // returns ±1
	v := -1
	if x[s.feature] > s.thresh {
		v = 1
	}
	return v * s.polarity
}

// Name implements Classifier.
func (a *AdaBoost) Name() string { return fmt.Sprintf("adaboost(rounds=%d)", a.Rounds) }

// Fit implements Classifier.
func (a *AdaBoost) Fit(xs [][]float64, ys []int) error {
	dim, err := validate(xs, ys)
	if err != nil {
		return err
	}
	if a.Rounds <= 0 {
		a.Rounds = 50
	}
	a.stumps = a.stumps[:0]
	a.alphas = a.alphas[:0]

	n := len(xs)
	// Labels in ±1.
	y := make([]int, n)
	for i, v := range ys {
		y[i] = 2*v - 1
	}
	w := make([]float64, n)
	for i := range w {
		w[i] = 1 / float64(n)
	}

	// Pre-sort example indices per feature once.
	order := make([][]int, dim)
	for f := 0; f < dim; f++ {
		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(p, q int) bool { return xs[idx[p]][f] < xs[idx[q]][f] })
		order[f] = idx
	}

	for round := 0; round < a.Rounds; round++ {
		best, bestErr := stump{}, math.Inf(1)
		for f := 0; f < dim; f++ {
			idx := order[f]
			// err(threshold below all) for polarity +1: predicting +1 for
			// everything → error = Σ w[y=-1].
			errPlus := 0.0
			for i := 0; i < n; i++ {
				if y[i] == -1 {
					errPlus += w[i]
				}
			}
			// Sweep thresholds; moving example idx[k] to the "≤ thresh"
			// side flips its prediction from +1 to -1 under polarity +1.
			e := errPlus
			for k := 0; k < n; k++ {
				i := idx[k]
				if y[i] == -1 {
					e -= w[i]
				} else {
					e += w[i]
				}
				//lint:allow floateq identical feature values admit no threshold between them; exact identity is the point
				if k+1 < n && xs[idx[k]][f] == xs[idx[k+1]][f] {
					continue
				}
				thresh := xs[i][f]
				if k+1 < n {
					thresh = (xs[i][f] + xs[idx[k+1]][f]) / 2
				}
				if e < bestErr {
					bestErr = e
					best = stump{feature: f, thresh: thresh, polarity: 1}
				}
				if 1-e < bestErr {
					bestErr = 1 - e
					best = stump{feature: f, thresh: thresh, polarity: -1}
				}
			}
		}
		const eps = 1e-10
		bestErr = math.Max(math.Min(bestErr, 1-eps), eps)
		alpha := 0.5 * math.Log((1-bestErr)/bestErr)
		a.stumps = append(a.stumps, best)
		a.alphas = append(a.alphas, alpha)
		if bestErr < eps*2 {
			break // perfect stump; further rounds are redundant
		}
		// Reweight.
		var sum float64
		for i := range w {
			w[i] *= math.Exp(-alpha * float64(y[i]*best.predict(xs[i])))
			sum += w[i]
		}
		for i := range w {
			w[i] /= sum
		}
	}
	return nil
}

// PredictProba implements Classifier, squashing the boosted margin through
// a logistic link.
func (a *AdaBoost) PredictProba(x []float64) float64 {
	if len(a.stumps) == 0 {
		return 0.5
	}
	var score float64
	for i, s := range a.stumps {
		score += a.alphas[i] * float64(s.predict(x))
	}
	return 1 / (1 + math.Exp(-2*score))
}
