package ml

import (
	"fmt"
	"math"
	"sort"

	"leapme/internal/mathx"
)

// KNN is a k-nearest-neighbours classifier with Euclidean distance.
type KNN struct {
	// K is the neighbourhood size (default 5).
	K int

	xs [][]float64
	ys []int
}

// Name implements Classifier.
func (k *KNN) Name() string { return fmt.Sprintf("knn(k=%d)", k.K) }

// Fit implements Classifier (lazy learner: memorises the training set).
func (k *KNN) Fit(xs [][]float64, ys []int) error {
	if _, err := validate(xs, ys); err != nil {
		return err
	}
	if k.K <= 0 {
		k.K = 5
	}
	k.xs, k.ys = xs, ys
	return nil
}

// PredictProba implements Classifier.
func (k *KNN) PredictProba(x []float64) float64 {
	if len(k.xs) == 0 {
		return 0.5
	}
	type cand struct {
		d float64
		y int
	}
	cands := make([]cand, len(k.xs))
	for i, xi := range k.xs {
		cands[i] = cand{d: mathx.EuclideanDistance(x, xi), y: k.ys[i]}
	}
	sort.Slice(cands, func(a, b int) bool { return cands[a].d < cands[b].d })
	kk := k.K
	if kk > len(cands) {
		kk = len(cands)
	}
	pos := 0
	for _, c := range cands[:kk] {
		pos += c.y
	}
	return float64(pos) / float64(kk)
}

// GaussianNB is a Gaussian naive Bayes classifier.
type GaussianNB struct {
	prior        [2]float64
	mean, varian [2][]float64
}

// Name implements Classifier.
func (g *GaussianNB) Name() string { return "gaussian-nb" }

// Fit implements Classifier.
func (g *GaussianNB) Fit(xs [][]float64, ys []int) error {
	dim, err := validate(xs, ys)
	if err != nil {
		return err
	}
	var count [2]int
	for c := 0; c < 2; c++ {
		g.mean[c] = make([]float64, dim)
		g.varian[c] = make([]float64, dim)
	}
	for i, x := range xs {
		c := ys[i]
		count[c]++
		mathx.AddTo(g.mean[c], g.mean[c], x)
	}
	for c := 0; c < 2; c++ {
		g.prior[c] = float64(count[c]) / float64(len(xs))
		if count[c] > 0 {
			mathx.ScaleTo(g.mean[c], g.mean[c], 1/float64(count[c]))
		}
	}
	for i, x := range xs {
		c := ys[i]
		for j, v := range x {
			d := v - g.mean[c][j]
			g.varian[c][j] += d * d
		}
	}
	for c := 0; c < 2; c++ {
		for j := range g.varian[c] {
			if count[c] > 0 {
				g.varian[c][j] /= float64(count[c])
			}
			// Variance smoothing keeps degenerate features finite.
			if g.varian[c][j] < 1e-9 {
				g.varian[c][j] = 1e-9
			}
		}
	}
	return nil
}

// PredictProba implements Classifier.
func (g *GaussianNB) PredictProba(x []float64) float64 {
	if g.mean[0] == nil {
		return 0.5
	}
	var logp [2]float64
	for c := 0; c < 2; c++ {
		if g.prior[c] == 0 {
			logp[c] = math.Inf(-1)
			continue
		}
		lp := math.Log(g.prior[c])
		for j, v := range x {
			d := v - g.mean[c][j]
			lp += -0.5*math.Log(2*math.Pi*g.varian[c][j]) - d*d/(2*g.varian[c][j])
		}
		logp[c] = lp
	}
	// Normalise in log space.
	m := math.Max(logp[0], logp[1])
	p0 := math.Exp(logp[0] - m)
	p1 := math.Exp(logp[1] - m)
	return p1 / (p0 + p1)
}

// LogisticRegression is L2-regularised logistic regression fitted by
// full-batch gradient descent.
type LogisticRegression struct {
	// LR is the learning rate (default 0.1).
	LR float64
	// Iters is the number of gradient steps (default 500).
	Iters int
	// L2 is the ridge penalty (default 1e-4).
	L2 float64

	w []float64
	b float64
}

// Name implements Classifier.
func (l *LogisticRegression) Name() string { return "logreg" }

// Fit implements Classifier.
func (l *LogisticRegression) Fit(xs [][]float64, ys []int) error {
	dim, err := validate(xs, ys)
	if err != nil {
		return err
	}
	if l.LR <= 0 {
		l.LR = 0.1
	}
	if l.Iters <= 0 {
		l.Iters = 500
	}
	if l.L2 < 0 {
		l.L2 = 1e-4
	}
	l.w = make([]float64, dim)
	l.b = 0
	gw := make([]float64, dim)
	n := float64(len(xs))
	for it := 0; it < l.Iters; it++ {
		mathx.Zero(gw)
		gb := 0.0
		for i, x := range xs {
			p := l.PredictProba(x)
			diff := p - float64(ys[i])
			mathx.AxpyTo(gw, diff, x)
			gb += diff
		}
		for j := range gw {
			gw[j] = gw[j]/n + l.L2*l.w[j]
		}
		mathx.AxpyTo(l.w, -l.LR, gw)
		l.b -= l.LR * gb / n
	}
	return nil
}

// PredictProba implements Classifier.
func (l *LogisticRegression) PredictProba(x []float64) float64 {
	if l.w == nil {
		return 0.5
	}
	z := mathx.Dot(l.w, x) + l.b
	if z > 30 {
		return 1
	}
	if z < -30 {
		return 0
	}
	return 1 / (1 + math.Exp(-z))
}
