package eval

import (
	"fmt"

	"leapme/internal/baselines"
	"leapme/internal/dataset"
	"leapme/internal/features"
)

// HeterogeneityPoint is one point of the name-heterogeneity sweep
// (experiment A5): the same dataset generated at decreasing canonical-name
// bias, evaluated for LEAPME and the string-based unsupervised baselines.
// The paper's core argument — embeddings bridge name heterogeneity that
// string similarity cannot — predicts LEAPME's margin over AML/FCA-Map
// must *grow* as names diverge.
type HeterogeneityPoint struct {
	// CanonicalBias of the generated dataset (lower = messier names).
	CanonicalBias float64
	LEAPME        PRF
	AML           PRF
	FCAMap        PRF
}

// HeterogeneitySweep regenerates cfg at each canonical bias and evaluates
// at 80% training.
func (h *Harness) HeterogeneitySweep(cfg dataset.GenConfig, biases []float64) ([]HeterogeneityPoint, error) {
	if len(biases) == 0 {
		biases = []float64{0.8, 0.6, 0.4, 0.2}
	}
	var out []HeterogeneityPoint
	for _, bias := range biases {
		c := cfg
		c.CanonicalBias = bias
		c.Name = fmt.Sprintf("%s-bias%02.0f", cfg.Name, bias*100)
		d, err := dataset.Generate(c)
		if err != nil {
			return nil, err
		}
		pt := HeterogeneityPoint{CanonicalBias: bias}
		if pt.LEAPME, err = h.EvalLEAPME(d, features.FullConfig(), 0.8); err != nil {
			return nil, err
		}
		if pt.AML, err = h.EvalBaseline(d, func() baselines.Matcher { return baselines.NewAML() }, 0.8); err != nil {
			return nil, err
		}
		if pt.FCAMap, err = h.EvalBaseline(d, func() baselines.Matcher { return baselines.NewFCAMap() }, 0.8); err != nil {
			return nil, err
		}
		out = append(out, pt)
	}
	return out, nil
}
