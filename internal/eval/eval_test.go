package eval

import (
	"strings"
	"testing"

	"leapme/internal/dataset"
	"leapme/internal/domain"
	"leapme/internal/embedding"
	"leapme/internal/features"
	"leapme/internal/mathx"
	"leapme/internal/nn"
)

var cachedStore *embedding.Store

func getStore(t *testing.T) *embedding.Store {
	t.Helper()
	if cachedStore == nil {
		corpus := domain.Corpus(
			[]*domain.Category{domain.Cameras(), domain.Headphones()},
			domain.CorpusConfig{SentencesPerProp: 40, Seed: 1})
		cfg := embedding.DefaultGloVeConfig()
		cfg.Dim = 24
		cfg.Epochs = 15
		s, err := embedding.TrainGloVe(corpus, cfg)
		if err != nil {
			t.Fatal(err)
		}
		cachedStore = s
	}
	return cachedStore
}

func tinyDataset(t *testing.T, cat *domain.Category, seed int64) *dataset.Dataset {
	t.Helper()
	d, err := dataset.Generate(dataset.GenConfig{
		Name:           cat.Name + "-tiny",
		Category:       cat,
		NumSources:     4,
		SharedPresence: 0.8,
		CanonicalBias:  0.55,
		SplitProb:      0.05,
		NoiseProps:     5,
		MinEntities:    6,
		MaxEntities:    10,
		MissingRate:    0.3,
		Seed:           seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// fastHarness keeps unit-test runtime low: 2 runs, short schedule.
func fastHarness(t *testing.T) *Harness {
	h := NewHarness(getStore(t), 1)
	h.Runs = 2
	h.Options.Schedule = []nn.Phase{{Epochs: 8, LR: 1e-3}}
	return h
}

func TestPRF(t *testing.T) {
	m := prfFrom(8, 2, 2)
	if m.P != 0.8 || m.R != 0.8 || m.F1 < 0.8-1e-12 || m.F1 > 0.8+1e-12 {
		t.Errorf("prfFrom = %+v", m)
	}
	z := prfFrom(0, 0, 0)
	if z.P != 0 || z.R != 0 || z.F1 != 0 {
		t.Errorf("zero counts = %+v", z)
	}
	if s := m.String(); !strings.Contains(s, "F1=0.80") {
		t.Errorf("String = %q", s)
	}
}

func TestMean(t *testing.T) {
	got := mean([]PRF{{P: 1, R: 0, F1: 0.5}, {P: 0, R: 1, F1: 0.5}})
	if got.P != 0.5 || got.R != 0.5 || got.F1 != 0.5 {
		t.Errorf("mean = %+v", got)
	}
	if (mean(nil) != PRF{}) {
		t.Error("mean of nothing should be zero")
	}
}

func TestSplitSources(t *testing.T) {
	sources := []string{"a", "b", "c", "d", "e"}
	rng := mathx.NewRand(1)
	sp, err := SplitSources(sources, 0.4, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(sp.Train) != 2 || len(sp.Test) != 3 {
		t.Errorf("split = %d/%d", len(sp.Train), len(sp.Test))
	}
	for s := range sp.Train {
		if sp.Test[s] {
			t.Errorf("source %q on both sides", s)
		}
	}
}

func TestSplitSourcesExtremes(t *testing.T) {
	rng := mathx.NewRand(2)
	// Tiny fraction still trains on at least two sources (training needs
	// cross-source pairs).
	sp, err := SplitSources([]string{"a", "b", "c"}, 0.01, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(sp.Train) != 2 {
		t.Errorf("train = %d, want 2", len(sp.Train))
	}
	// Two sources: the floor drops to one so a test source remains.
	sp, err = SplitSources([]string{"a", "b"}, 0.01, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(sp.Train) != 1 || len(sp.Test) != 1 {
		t.Errorf("two-source split = %d/%d", len(sp.Train), len(sp.Test))
	}
	// Huge fraction still tests on at least one source.
	sp, err = SplitSources([]string{"a", "b", "c"}, 0.99, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(sp.Test) != 1 {
		t.Errorf("test = %d", len(sp.Test))
	}
	if _, err := SplitSources([]string{"a"}, 0.5, rng); err == nil {
		t.Error("single source accepted")
	}
	if _, err := SplitSources([]string{"a", "b"}, 0, rng); err == nil {
		t.Error("zero fraction accepted")
	}
	if _, err := SplitSources([]string{"a", "b"}, 1, rng); err == nil {
		t.Error("fraction 1 accepted")
	}
}

func TestScorePairs(t *testing.T) {
	k := func(s, n string) dataset.Key { return dataset.Key{Source: s, Name: n} }
	truth := map[dataset.Pair]bool{
		{A: k("s1", "a"), B: k("s2", "b")}: true,
		{A: k("s1", "a"), B: k("s3", "c")}: true,
	}
	pred := []dataset.Pair{
		{A: k("s1", "a"), B: k("s2", "b")}, // tp
		{A: k("s1", "x"), B: k("s2", "y")}, // fp
	}
	m := scorePairs(pred, truth)
	if m.P != 0.5 || m.R != 0.5 {
		t.Errorf("scorePairs = %+v", m)
	}
}

func TestEvalLEAPMESmoke(t *testing.T) {
	h := fastHarness(t)
	d := tinyDataset(t, domain.Cameras(), 10)
	m, err := h.EvalLEAPME(d, features.FullConfig(), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if m.F1 <= 0 {
		t.Errorf("LEAPME F1 = %v, want > 0", m.F1)
	}
	t.Logf("LEAPME tiny: %v", m)
}

func TestEvalLEAPMEDeterministic(t *testing.T) {
	h1 := fastHarness(t)
	h2 := fastHarness(t)
	d := tinyDataset(t, domain.Cameras(), 11)
	a, err := h1.EvalLEAPME(d, features.FullConfig(), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := h2.EvalLEAPME(d, features.FullConfig(), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("non-deterministic eval: %v vs %v", a, b)
	}
}

func TestOnRunCallback(t *testing.T) {
	h := fastHarness(t)
	var runs int
	h.OnRun = func(run int, m PRF) { runs++ }
	d := tinyDataset(t, domain.Cameras(), 12)
	if _, err := h.EvalLEAPME(d, features.FullConfig(), 0.5); err != nil {
		t.Fatal(err)
	}
	if runs != 2 {
		t.Errorf("OnRun fired %d times, want 2", runs)
	}
}

func TestTable2SmallSlice(t *testing.T) {
	h := fastHarness(t)
	d := tinyDataset(t, domain.Cameras(), 13)
	rows, err := h.Table2(Table2Config{
		Datasets:   []*dataset.Dataset{d},
		TrainFracs: []float64{0.5},
		Levels:     []string{"Names"},
	})
	if err != nil {
		t.Fatal(err)
	}
	// 3 LEAPME variants + 5 baselines.
	if len(rows) != 8 {
		t.Fatalf("rows = %d, want 8", len(rows))
	}
	bySystem := map[string]Row{}
	for _, r := range rows {
		bySystem[r.System] = r
	}
	if !bySystem["LEAPME"].Applicable || bySystem["LEAPME"].Metrics.F1 <= 0 {
		t.Error("LEAPME row missing or empty")
	}
	// LSH is instance-based: inapplicable in the Names level (the "-").
	if bySystem["LSH"].Applicable {
		t.Error("LSH should be inapplicable at Names level")
	}
	if !bySystem["AML"].Applicable {
		t.Error("AML should be applicable at Names level")
	}

	text := RenderTable2(rows)
	for _, want := range []string{"LEAPME", "AML", "FCA-Map", "SemProp", "LSH", "Names", "50%"} {
		if !strings.Contains(text, want) {
			t.Errorf("rendered table missing %q:\n%s", want, text)
		}
	}
}

func TestTable2InstancesLevelSkipsNameBaselines(t *testing.T) {
	h := fastHarness(t)
	d := tinyDataset(t, domain.Cameras(), 14)
	rows, err := h.Table2(Table2Config{
		Datasets:   []*dataset.Dataset{d},
		TrainFracs: []float64{0.5},
		Levels:     []string{"Instances"},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		switch r.System {
		case "AML", "FCA-Map", "SemProp", "Nezhadi":
			if r.Applicable {
				t.Errorf("%s should be inapplicable at Instances level", r.System)
			}
		case "LSH":
			if !r.Applicable {
				t.Error("LSH should be applicable at Instances level")
			}
		}
	}
}

func TestFractionSweep(t *testing.T) {
	h := fastHarness(t)
	d := tinyDataset(t, domain.Cameras(), 15)
	// 0.5 → 2 of 4 sources train (the 0.25 point would train on a single
	// source and have no cross-source pairs).
	pts, err := h.FractionSweep(d, []float64{0.5, 0.75})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("points = %d", len(pts))
	}
	if pts[0].TrainFrac != 0.5 || pts[1].TrainFrac != 0.75 {
		t.Errorf("fractions = %v, %v", pts[0].TrainFrac, pts[1].TrainFrac)
	}
}

func TestTransfer(t *testing.T) {
	h := fastHarness(t)
	h.Runs = 1
	cams := tinyDataset(t, domain.Cameras(), 16)
	phones := tinyDataset(t, domain.Headphones(), 17)
	res, err := h.Transfer([]*dataset.Dataset{cams, phones})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 4 {
		t.Fatalf("results = %d, want 4 (2x2)", len(res))
	}
	found := map[string]bool{}
	for _, r := range res {
		found[r.TrainDataset+"→"+r.TestDataset] = true
	}
	for _, want := range []string{
		"cameras-tiny→cameras-tiny", "cameras-tiny→headphones-tiny",
		"headphones-tiny→cameras-tiny", "headphones-tiny→headphones-tiny",
	} {
		if !found[want] {
			t.Errorf("missing transfer cell %s", want)
		}
	}
}

func TestClusterings(t *testing.T) {
	h := fastHarness(t)
	d := tinyDataset(t, domain.Cameras(), 18)
	res, err := h.Clusterings(d)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("schemes = %d", len(res))
	}
	for _, r := range res {
		if r.Metrics.F1 < 0 || r.Metrics.F1 > 1 {
			t.Errorf("%s F1 = %v", r.Scheme, r.Metrics.F1)
		}
	}
}

func TestStats(t *testing.T) {
	s := statsOf([]PRF{{F1: 0.4}, {F1: 0.6}})
	if s.Mean.F1 != 0.5 || s.Runs != 2 {
		t.Errorf("stats = %+v", s)
	}
	if s.F1Std < 0.099 || s.F1Std > 0.101 {
		t.Errorf("F1Std = %v, want 0.1", s.F1Std)
	}
	if got := s.String(); !strings.Contains(got, "±0.10") {
		t.Errorf("String = %q", got)
	}
	if st := statsOf(nil); st.Runs != 0 || st.F1Std != 0 {
		t.Errorf("empty stats = %+v", st)
	}
}

func TestEvalLEAPMEStats(t *testing.T) {
	h := fastHarness(t)
	d := tinyDataset(t, domain.Cameras(), 30)
	s, err := h.EvalLEAPMEStats(d, features.FullConfig(), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if s.Runs != 2 {
		t.Errorf("runs = %d", s.Runs)
	}
	if s.Mean.F1 <= 0 {
		t.Errorf("mean F1 = %v", s.Mean.F1)
	}
}

func TestHeterogeneitySweep(t *testing.T) {
	h := fastHarness(t)
	h.Runs = 1
	cfg := dataset.GenConfig{
		Name:           "het",
		Category:       domain.Cameras(),
		NumSources:     4,
		SharedPresence: 0.8,
		SplitProb:      0.05,
		NoiseProps:     4,
		MinEntities:    5,
		MaxEntities:    8,
		MissingRate:    0.3,
		Seed:           31,
	}
	pts, err := h.HeterogeneitySweep(cfg, []float64{0.7, 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("points = %d", len(pts))
	}
	for _, pt := range pts {
		if pt.LEAPME.F1 <= 0 {
			t.Errorf("bias %v: LEAPME F1 = %v", pt.CanonicalBias, pt.LEAPME.F1)
		}
		if pt.AML.F1 < 0 || pt.FCAMap.F1 < 0 {
			t.Errorf("bias %v: negative baseline F1", pt.CanonicalBias)
		}
	}
}

func TestAblation(t *testing.T) {
	h := fastHarness(t)
	h.Runs = 1
	d := tinyDataset(t, domain.Cameras(), 19)
	rows, err := h.Ablation(d, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 {
		t.Fatalf("ablation rows = %d, want 9", len(rows))
	}
}
