// Package eval implements the paper's evaluation protocol (Section V):
// random fractions of a dataset's *sources* are used for training, pairs
// within training sources (with two sampled negatives per positive) train
// the matchers, and all cross-source pairs among the held-out sources are
// classified and scored with precision, recall and F1. Runs are repeated
// with different random source combinations and averaged. The harness
// evaluates LEAPME under all nine feature configurations as well as the
// five baselines, reproduces Table II, and adds the training-fraction,
// transfer-learning and clustering experiments.
package eval

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"

	"leapme/internal/baselines"
	"leapme/internal/core"
	"leapme/internal/dataset"
	"leapme/internal/embedding"
	"leapme/internal/features"
	"leapme/internal/mathx"
	"leapme/internal/parallel"
)

// PRF is a precision/recall/F1 triple.
type PRF struct {
	P, R, F1 float64
}

// String renders the triple like the paper's tables.
func (m PRF) String() string { return fmt.Sprintf("P=%.2f R=%.2f F1=%.2f", m.P, m.R, m.F1) }

// prfFrom computes metrics from counts.
func prfFrom(tp, fp, fn int) PRF {
	var m PRF
	if tp+fp > 0 {
		m.P = float64(tp) / float64(tp+fp)
	}
	if tp+fn > 0 {
		m.R = float64(tp) / float64(tp+fn)
	}
	if m.P+m.R > 0 {
		m.F1 = 2 * m.P * m.R / (m.P + m.R)
	}
	return m
}

// mean averages a slice of PRFs component-wise (the paper averages its 25
// runs the same way).
func mean(ms []PRF) PRF {
	if len(ms) == 0 {
		return PRF{}
	}
	var out PRF
	for _, m := range ms {
		out.P += m.P
		out.R += m.R
		out.F1 += m.F1
	}
	n := float64(len(ms))
	out.P /= n
	out.R /= n
	out.F1 /= n
	return out
}

// Stats summarises repeated runs: the component-wise mean plus the
// standard deviation of F1 across runs, which the multi-run protocol
// surfaces so table readers can judge split-to-split variance.
type Stats struct {
	Mean  PRF
	F1Std float64
	Runs  int
}

// String renders mean metrics with the F1 spread.
func (s Stats) String() string {
	return fmt.Sprintf("P=%.2f R=%.2f F1=%.2f±%.2f (n=%d)", s.Mean.P, s.Mean.R, s.Mean.F1, s.F1Std, s.Runs)
}

func statsOf(ms []PRF) Stats {
	st := Stats{Mean: mean(ms), Runs: len(ms)}
	if len(ms) > 1 {
		var ss float64
		for _, m := range ms {
			d := m.F1 - st.Mean.F1
			ss += d * d
		}
		st.F1Std = math.Sqrt(ss / float64(len(ms)))
	}
	return st
}

// Split is one train/test division of a dataset's sources.
type Split struct {
	Train map[string]bool
	Test  map[string]bool
}

// SplitSources draws a random train fraction of sources. At least one
// source lands on each side.
func SplitSources(sources []string, trainFrac float64, rng randSource) (Split, error) {
	if len(sources) < 2 {
		return Split{}, errors.New("eval: need at least 2 sources to split")
	}
	if trainFrac <= 0 || trainFrac >= 1 {
		return Split{}, fmt.Errorf("eval: train fraction %v outside (0, 1)", trainFrac)
	}
	n := int(math.Round(trainFrac * float64(len(sources))))
	// Training needs cross-source pairs, hence at least two training
	// sources whenever the dataset allows it (the WDC datasets at 20%
	// would otherwise train on a single source, which has none).
	if n < 2 && len(sources) >= 3 {
		n = 2
	}
	if n < 1 {
		n = 1
	}
	if n > len(sources)-1 {
		n = len(sources) - 1
	}
	perm := rng.Perm(len(sources))
	sp := Split{Train: map[string]bool{}, Test: map[string]bool{}}
	for i, idx := range perm {
		if i < n {
			sp.Train[sources[idx]] = true
		} else {
			sp.Test[sources[idx]] = true
		}
	}
	return sp, nil
}

type randSource interface {
	Perm(int) []int
	Intn(int) int
	Float64() float64
}

// Harness evaluates matchers over repeated random splits.
type Harness struct {
	// Store supplies embeddings to LEAPME and SemProp.
	Store *embedding.Store
	// Runs is the number of random source splits per configuration
	// (the paper uses 25).
	Runs int
	// NegRatio is the number of sampled training negatives per positive
	// (the paper uses 2).
	NegRatio int
	// Seed drives split sampling, negative sampling and model init.
	Seed int64
	// Options templates the LEAPME matcher; Features is overridden per
	// evaluation.
	Options core.Options
	// Workers runs the repeated splits concurrently when > 1 (negative =
	// one worker per CPU, 0/1 = the legacy serial loop). Each run derives
	// its RNG from the master seed and the run index alone and results
	// are collected in run order, so the reported Stats are bit-identical
	// for every setting. Runs are panic-isolated via internal/guard.
	Workers int
	// OnRun, if non-nil, is called after each run with the run index and
	// its metrics — for progress reporting in the CLI. With Workers > 1
	// the calls are serialised but may arrive out of run order.
	OnRun func(run int, m PRF)
	// Ctx, if non-nil, cancels the scenario loop: it is checked before
	// each run and threaded into feature computation, training and
	// matching, so a long 25-run evaluation aborts within one work unit
	// of cancellation (or its deadline). Nil means context.Background().
	Ctx context.Context
}

// context returns the harness's effective context.
func (h *Harness) context() context.Context {
	if h.Ctx != nil {
		return h.Ctx
	}
	return context.Background()
}

// NewHarness returns a harness with the paper's protocol parameters.
func NewHarness(store *embedding.Store, seed int64) *Harness {
	return &Harness{
		Store:    store,
		Runs:     25,
		NegRatio: 2,
		Seed:     seed,
		Options:  core.DefaultOptions(seed),
	}
}

// truthIn returns the ground-truth matching pairs among props as a set.
func truthIn(props []dataset.Property) map[dataset.Pair]bool {
	t := map[dataset.Pair]bool{}
	for _, p := range dataset.MatchingPairs(props) {
		t[p] = true
	}
	return t
}

// testTruth returns the ground-truth matches among the *test* pairs: all
// cross-source pairs not wholly inside the training sources. This is the
// paper's protocol — "we use the examples that involve two sources of
// data in the training set to train the classifier, and test it with the
// rest" — and it keeps the test set non-empty even when only one source
// is held out (its pairs against the training sources are tested).
func testTruth(props []dataset.Property, train map[string]bool) map[dataset.Pair]bool {
	t := map[dataset.Pair]bool{}
	for _, p := range dataset.MatchingPairs(props) {
		if train[p.A.Source] && train[p.B.Source] {
			continue
		}
		t[p] = true
	}
	return t
}

// isTestPair reports whether a pair belongs to the test set under train.
func isTestPair(train map[string]bool) func(a, b dataset.Property) bool {
	return func(a, b dataset.Property) bool {
		return !(train[a.Source] && train[b.Source])
	}
}

// scorePairs computes PRF for predicted pairs against truth.
func scorePairs(pred []dataset.Pair, truth map[dataset.Pair]bool) PRF {
	tp := 0
	for _, p := range pred {
		if truth[p.Canonical()] {
			tp++
		}
	}
	return prfFrom(tp, len(pred)-tp, len(truth)-tp)
}

// EvalLEAPME trains and evaluates LEAPME under the given feature config
// and training fraction, averaged over h.Runs random splits.
func (h *Harness) EvalLEAPME(d *dataset.Dataset, fcfg features.Config, trainFrac float64) (PRF, error) {
	s, err := h.EvalLEAPMEStats(d, fcfg, trainFrac)
	return s.Mean, err
}

// EvalLEAPMEStats is EvalLEAPME with per-run spread statistics.
func (h *Harness) EvalLEAPMEStats(d *dataset.Dataset, fcfg features.Config, trainFrac float64) (Stats, error) {
	if h.Store == nil {
		return Stats{}, errors.New("eval: harness has no embedding store")
	}
	runs := h.Runs
	if runs <= 0 {
		runs = 25
	}
	// Feature computation is split-independent: do it once.
	opts := h.Options
	opts.Features = fcfg
	base, err := core.NewMatcher(h.Store, opts)
	if err != nil {
		return Stats{}, err
	}
	ctx := h.context()
	if err := base.ComputeFeatures(ctx, d); err != nil {
		return Stats{}, err
	}

	runOne := func(run int) (*PRF, error) {
		rng := mathx.NewRand(h.Seed + int64(run)*7919)
		sp, err := SplitSources(d.Sources, trainFrac, rng)
		if err != nil {
			return nil, err
		}
		trainProps := d.PropsOfSources(sp.Train)
		pairs := core.TrainingPairs(trainProps, h.negRatio(), rng)
		if countPositives(pairs) == 0 {
			return nil, nil // degenerate split: no positive training pairs
		}
		o := opts // per-run copy: the seed differs per run
		o.Seed = h.Seed + int64(run)
		m, err := core.NewMatcher(h.Store, o)
		if err != nil {
			return nil, err
		}
		if err := m.AdoptFeatures(base); err != nil {
			return nil, err
		}
		if _, err := m.Train(ctx, pairs); err != nil {
			return nil, err
		}
		truth := testTruth(d.Props, sp.Train)
		var pred []dataset.Pair
		if err := m.MatchWhere(ctx, d.Props, isTestPair(sp.Train), func(sp core.ScoredPair) {
			if sp.Match {
				pred = append(pred, dataset.Pair{A: sp.A, B: sp.B}.Canonical())
			}
		}); err != nil {
			return nil, err
		}
		prf := scorePairs(pred, truth)
		return &prf, nil
	}
	ms, err := h.collectRuns(ctx, runs, runOne)
	if err != nil {
		return Stats{}, err
	}
	if len(ms) == 0 {
		return Stats{}, errors.New("eval: every split was degenerate (no training positives)")
	}
	return statsOf(ms), nil
}

// collectRuns executes runOne for every run index — serially in run order
// when h.Workers ≤ 1, or on a worker pool otherwise — and returns the
// non-degenerate metrics in run order either way, so Stats do not depend
// on the worker count. Each run is responsible for deriving all of its
// randomness from the run index. Parallel runs are panic-isolated: a
// panicking run surfaces as an error after the pool drains rather than
// tearing the process down.
func (h *Harness) collectRuns(ctx context.Context, runs int, runOne func(run int) (*PRF, error)) ([]PRF, error) {
	workers := parallel.Resolve(h.Workers)
	if workers <= 1 {
		var ms []PRF
		for run := 0; run < runs; run++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			prf, err := runOne(run)
			if err != nil {
				return nil, err
			}
			if prf == nil {
				continue
			}
			ms = append(ms, *prf)
			if h.OnRun != nil {
				h.OnRun(run, *prf)
			}
		}
		return ms, nil
	}
	var mu sync.Mutex
	res, rep, err := parallel.Map(ctx, workers, runs,
		func(i int) string { return fmt.Sprintf("run %d", i) },
		func(run int) (*PRF, error) {
			prf, err := runOne(run)
			if err != nil {
				return nil, err
			}
			if prf != nil && h.OnRun != nil {
				mu.Lock()
				h.OnRun(run, *prf)
				mu.Unlock()
			}
			return prf, nil
		})
	if err != nil {
		return nil, err
	}
	if rep.Failed() > 0 {
		return nil, rep.Err()
	}
	var ms []PRF
	for _, p := range res {
		if p != nil {
			ms = append(ms, *p)
		}
	}
	return ms, nil
}

// EvalBaseline evaluates a baseline matcher under the paper's protocol.
// Unsupervised matchers are run on each split's test sources directly; a
// Trainable baseline is first fitted on the split's training sources with
// the same negative sampling as LEAPME.
func (h *Harness) EvalBaseline(d *dataset.Dataset, mk func() baselines.Matcher, trainFrac float64) (PRF, error) {
	s, err := h.EvalBaselineStats(d, mk, trainFrac)
	return s.Mean, err
}

// EvalBaselineStats is EvalBaseline with per-run spread statistics.
func (h *Harness) EvalBaselineStats(d *dataset.Dataset, mk func() baselines.Matcher, trainFrac float64) (Stats, error) {
	runs := h.Runs
	if runs <= 0 {
		runs = 25
	}
	values := d.InstancesByProperty()
	ctx := h.context()
	runOne := func(run int) (*PRF, error) {
		rng := mathx.NewRand(h.Seed + int64(run)*7919)
		sp, err := SplitSources(d.Sources, trainFrac, rng)
		if err != nil {
			return nil, err
		}
		matcher := mk()
		if tr, ok := matcher.(baselines.Trainable); ok {
			trainProps := d.PropsOfSources(sp.Train)
			labeled := core.TrainingPairs(trainProps, h.negRatio(), rng)
			var pos, neg []dataset.Pair
			for _, lp := range labeled {
				pr := dataset.Pair{A: lp.A, B: lp.B}
				if lp.Match {
					pos = append(pos, pr)
				} else {
					neg = append(neg, pr)
				}
			}
			if len(pos) == 0 {
				return nil, nil
			}
			if err := tr.Train(baselines.Input{Props: trainProps, Values: values}, pos, neg); err != nil {
				return nil, err
			}
		}
		// Baselines see all properties; predictions are scored on the
		// test pairs only (≥1 endpoint outside the training sources),
		// mirroring the LEAPME protocol.
		matches, err := matcher.Match(baselines.Input{Props: d.Props, Values: values})
		if err != nil {
			return nil, err
		}
		var pred []dataset.Pair
		for _, m := range matches {
			p := m.Pair.Canonical()
			if sp.Train[p.A.Source] && sp.Train[p.B.Source] {
				continue
			}
			pred = append(pred, p)
		}
		prf := scorePairs(pred, testTruth(d.Props, sp.Train))
		return &prf, nil
	}
	ms, err := h.collectRuns(ctx, runs, runOne)
	if err != nil {
		return Stats{}, err
	}
	if len(ms) == 0 {
		return Stats{}, errors.New("eval: every split was degenerate")
	}
	return statsOf(ms), nil
}

func (h *Harness) negRatio() int {
	if h.NegRatio <= 0 {
		return 2
	}
	return h.NegRatio
}

func countPositives(pairs []core.LabeledPair) int {
	n := 0
	for _, p := range pairs {
		if p.Match {
			n++
		}
	}
	return n
}
