package eval

import (
	"context"
	"math"
	"sync"
	"testing"

	"leapme/internal/baselines"
	"leapme/internal/domain"
	"leapme/internal/features"
)

func newNameBaseline() baselines.Matcher { return baselines.NewNezhadi() }

// TestEvalStatsDeterminismAcrossWorkerCounts: concurrent repetitions must
// report the same Stats as the serial loop, bit for bit — each run's
// randomness is a pure function of (master seed, run index) and results
// are collected in run order.
func TestEvalStatsDeterminismAcrossWorkerCounts(t *testing.T) {
	d := tinyDataset(t, domain.Cameras(), 21)
	at := func(workers int) Stats {
		h := fastHarness(t)
		h.Runs = 4
		h.Workers = workers
		s, err := h.EvalLEAPMEStats(d, features.FullConfig(), 0.5)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return s
	}
	ref := at(1)
	for _, w := range []int{4, -1} {
		got := at(w)
		if got.Runs != ref.Runs ||
			math.Float64bits(got.Mean.P) != math.Float64bits(ref.Mean.P) ||
			math.Float64bits(got.Mean.R) != math.Float64bits(ref.Mean.R) ||
			math.Float64bits(got.Mean.F1) != math.Float64bits(ref.Mean.F1) ||
			math.Float64bits(got.F1Std) != math.Float64bits(ref.F1Std) {
			t.Errorf("workers=%d: %v, want %v (bit-identical)", w, got, ref)
		}
	}
}

// TestEvalParallelOnRun: the callback must fire once per run, serialised,
// even when runs race.
func TestEvalParallelOnRun(t *testing.T) {
	h := fastHarness(t)
	h.Runs = 4
	h.Workers = 4
	var mu sync.Mutex
	seen := map[int]int{}
	h.OnRun = func(run int, m PRF) {
		mu.Lock()
		seen[run]++
		mu.Unlock()
	}
	d := tinyDataset(t, domain.Cameras(), 22)
	if _, err := h.EvalLEAPMEStats(d, features.FullConfig(), 0.5); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 4 {
		t.Fatalf("OnRun covered %d runs, want 4 (%v)", len(seen), seen)
	}
	for run, n := range seen {
		if n != 1 {
			t.Errorf("run %d reported %d times", run, n)
		}
	}
}

// TestEvalParallelCancellation: a cancelled context aborts the pool.
func TestEvalParallelCancellation(t *testing.T) {
	h := fastHarness(t)
	h.Runs = 8
	h.Workers = 2
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	h.Ctx = ctx
	d := tinyDataset(t, domain.Cameras(), 23)
	if _, err := h.EvalLEAPMEStats(d, features.FullConfig(), 0.5); err == nil {
		t.Error("cancelled harness returned nil error")
	}
}

// TestEvalBaselineStatsParallel: the baseline path shares collectRuns;
// sanity-check it under concurrency too.
func TestEvalBaselineStatsParallel(t *testing.T) {
	d := tinyDataset(t, domain.Cameras(), 24)
	at := func(workers int) Stats {
		h := fastHarness(t)
		h.Runs = 3
		h.Workers = workers
		s, err := h.EvalBaselineStats(d, newNameBaseline, 0.5)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return s
	}
	ref := at(1)
	got := at(3)
	if math.Float64bits(got.Mean.F1) != math.Float64bits(ref.Mean.F1) || got.Runs != ref.Runs {
		t.Errorf("baseline stats differ across worker counts: %v vs %v", got, ref)
	}
}
