package eval

import (
	"fmt"

	"leapme/internal/core"
	"leapme/internal/dataset"
	"leapme/internal/features"
	"leapme/internal/graph"
	"leapme/internal/mathx"
)

// FractionPoint is one point of the training-fraction sweep (experiment
// A2): the paper studies "the impact of different amounts of training
// data"; this sweep traces the full curve rather than just 20% and 80%.
type FractionPoint struct {
	Dataset   string
	TrainFrac float64
	Metrics   PRF
}

// FractionSweep evaluates LEAPME (full features) at each training
// fraction.
func (h *Harness) FractionSweep(d *dataset.Dataset, fracs []float64) ([]FractionPoint, error) {
	if len(fracs) == 0 {
		fracs = []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9}
	}
	var out []FractionPoint
	for _, f := range fracs {
		m, err := h.EvalLEAPME(d, features.FullConfig(), f)
		if err != nil {
			return nil, fmt.Errorf("eval: fraction %.2f: %w", f, err)
		}
		out = append(out, FractionPoint{Dataset: d.Name, TrainFrac: f, Metrics: m})
	}
	return out, nil
}

// TransferResult is one cell of the transfer-learning experiment (A3):
// train on all sources of one dataset, test on all sources of another —
// the paper's "use of transfer learning" study. Train == Test gives the
// in-domain reference diagonal (trained and tested on disjoint source
// splits of the same dataset).
type TransferResult struct {
	TrainDataset, TestDataset string
	Metrics                   PRF
}

// Transfer evaluates every ordered (train, test) dataset pair. For the
// diagonal it defers to the standard protocol at 80% training; off the
// diagonal the matcher trains on *all* pairs of the training dataset and
// classifies *all* pairs of the test dataset.
func (h *Harness) Transfer(ds []*dataset.Dataset) ([]TransferResult, error) {
	var out []TransferResult
	for _, dtrain := range ds {
		for _, dtest := range ds {
			if dtrain == dtest {
				m, err := h.EvalLEAPME(dtest, features.FullConfig(), 0.8)
				if err != nil {
					return nil, err
				}
				out = append(out, TransferResult{dtrain.Name, dtest.Name, m})
				continue
			}
			m, err := h.transferOne(dtrain, dtest)
			if err != nil {
				return nil, fmt.Errorf("eval: transfer %s→%s: %w", dtrain.Name, dtest.Name, err)
			}
			out = append(out, TransferResult{dtrain.Name, dtest.Name, m})
		}
	}
	return out, nil
}

func (h *Harness) transferOne(dtrain, dtest *dataset.Dataset) (PRF, error) {
	runs := h.Runs
	if runs <= 0 {
		runs = 25
	}
	// Transfer runs vary only in sampling/init seeds, not splits; a few
	// repetitions suffice, bounded by the harness run count.
	if runs > 5 {
		runs = 5
	}
	opts := h.Options
	opts.Features = features.FullConfig()
	ctx := h.context()
	var ms []PRF
	for run := 0; run < runs; run++ {
		rng := mathx.NewRand(h.Seed + int64(run)*104729)
		opts.Seed = h.Seed + int64(run)
		m, err := core.NewMatcher(h.Store, opts)
		if err != nil {
			return PRF{}, err
		}
		if err := m.ComputeFeatures(ctx, dtrain); err != nil {
			return PRF{}, err
		}
		if err := m.ComputeFeatures(ctx, dtest); err != nil {
			return PRF{}, err
		}
		pairs := core.TrainingPairs(dtrain.Props, h.negRatio(), rng)
		if countPositives(pairs) == 0 {
			continue
		}
		if _, err := m.Train(ctx, pairs); err != nil {
			return PRF{}, err
		}
		truth := truthIn(dtest.Props)
		var pred []dataset.Pair
		if err := m.MatchAll(ctx, dtest.Props, func(sp core.ScoredPair) {
			if sp.Match {
				pred = append(pred, dataset.Pair{A: sp.A, B: sp.B}.Canonical())
			}
		}); err != nil {
			return PRF{}, err
		}
		ms = append(ms, scorePairs(pred, truth))
	}
	if len(ms) == 0 {
		return PRF{}, fmt.Errorf("eval: no valid transfer runs")
	}
	return mean(ms), nil
}

// ClusterResult is one row of the clustering extension (experiment A4,
// the paper's future-work step): pairwise quality of clusters derived
// from LEAPME's similarity graph by each clustering scheme.
type ClusterResult struct {
	Dataset string
	Scheme  string
	Metrics PRF
}

// Clusterings builds LEAPME's similarity graph on each dataset's test
// split (80% training) and evaluates connected components, star
// clustering and correlation clustering on it.
func (h *Harness) Clusterings(d *dataset.Dataset) ([]ClusterResult, error) {
	opts := h.Options
	opts.Features = features.FullConfig()
	rng := mathx.NewRand(h.Seed)
	sp, err := SplitSources(d.Sources, 0.8, rng)
	if err != nil {
		return nil, err
	}
	m, err := core.NewMatcher(h.Store, opts)
	if err != nil {
		return nil, err
	}
	ctx := h.context()
	if err := m.ComputeFeatures(ctx, d); err != nil {
		return nil, err
	}
	trainProps := d.PropsOfSources(sp.Train)
	pairs := core.TrainingPairs(trainProps, h.negRatio(), rng)
	if _, err := m.Train(ctx, pairs); err != nil {
		return nil, err
	}
	// Similarity graph over the test pairs (the paper's protocol: pairs
	// not wholly inside the training sources).
	g := graph.New()
	for _, p := range d.Props {
		g.AddNode(p.Key())
	}
	if err := m.MatchWhere(ctx, d.Props, isTestPair(sp.Train), func(sp core.ScoredPair) {
		if sp.Match {
			g.AddEdge(sp.A, sp.B, sp.Score)
		}
	}); err != nil {
		return nil, err
	}
	truthSet := testTruth(d.Props, sp.Train)

	schemes := []struct {
		name string
		fn   func() graph.Clustering
	}{
		{"connected-components", g.ConnectedComponents},
		{"star", g.StarClustering},
		{"correlation(0.7)", func() graph.Clustering { return g.CorrelationClustering(0.7) }},
	}
	var out []ClusterResult
	for _, s := range schemes {
		// Score only the cluster-implied pairs in the test set; clusters
		// may also contain training properties linked via test edges,
		// whose train–train pairs are outside the protocol.
		var pred []dataset.Pair
		for _, pr := range s.fn().Pairs() {
			if sp.Train[pr.A.Source] && sp.Train[pr.B.Source] {
				continue
			}
			pred = append(pred, pr)
		}
		prf := scorePairs(pred, truthSet)
		out = append(out, ClusterResult{Dataset: d.Name, Scheme: s.name, Metrics: prf})
	}
	return out, nil
}

// AblationRow is one row of the 9-configuration feature ablation on a
// single dataset (experiment A1 zooms into what Table II spreads over
// levels).
type AblationRow struct {
	Config  features.Config
	Metrics PRF
}

// Ablation evaluates all nine feature configurations on one dataset at
// the given training fraction.
func (h *Harness) Ablation(d *dataset.Dataset, trainFrac float64) ([]AblationRow, error) {
	var out []AblationRow
	for _, fc := range features.AllConfigs() {
		m, err := h.EvalLEAPME(d, fc, trainFrac)
		if err != nil {
			return nil, fmt.Errorf("eval: ablation %v: %w", fc, err)
		}
		out = append(out, AblationRow{Config: fc, Metrics: m})
	}
	return out, nil
}
