package eval

import (
	"fmt"
	"sort"
	"strings"

	"leapme/internal/baselines"
	"leapme/internal/dataset"
	"leapme/internal/features"
)

// Row is one cell-group of Table II: a system evaluated on a dataset at a
// training fraction within a feature level.
type Row struct {
	Level     string // "Instances", "Names", "Both"
	Dataset   string
	TrainFrac float64
	System    string
	Metrics   PRF
	// Applicable is false where the paper prints "-": name-based
	// baselines in the instances-only block and LSH in the names block.
	Applicable bool
}

// Table2Config selects which slice of Table II to compute.
type Table2Config struct {
	// Datasets to evaluate.
	Datasets []*dataset.Dataset
	// TrainFracs, default {0.2, 0.8} as in the paper.
	TrainFracs []float64
	// Levels, default all three ("Instances", "Names", "Both").
	Levels []string
	// SkipBaselines computes only the LEAPME columns.
	SkipBaselines bool
}

// LEAPME's three kind-variants per level, in the paper's column order.
var kindVariants = []struct {
	Suffix string
	Emb    bool
	NonEmb bool
}{
	{Suffix: "", Emb: true, NonEmb: true},        // LEAPME
	{Suffix: "(emb)", Emb: true, NonEmb: false},  // LEAPME(emb)
	{Suffix: "(-emb)", Emb: false, NonEmb: true}, // LEAPME(-emb)
}

// Table2 reproduces the paper's Table II on the given datasets: for each
// feature level and training fraction it evaluates LEAPME, LEAPME(emb)
// and LEAPME(−emb), plus the five baselines where applicable (name-based
// baselines only for name-bearing levels, instance-based LSH only for
// instance-bearing levels, exactly like the dashes in the paper's table).
func (h *Harness) Table2(cfg Table2Config) ([]Row, error) {
	fracs := cfg.TrainFracs
	if len(fracs) == 0 {
		fracs = []float64{0.2, 0.8}
	}
	levels := cfg.Levels
	if len(levels) == 0 {
		levels = []string{"Instances", "Names", "Both"}
	}
	var rows []Row
	for _, lvl := range levels {
		inst, names, err := levelFlags(lvl)
		if err != nil {
			return nil, err
		}
		for _, d := range cfg.Datasets {
			for _, frac := range fracs {
				for _, kv := range kindVariants {
					fc := features.Config{
						Instances:     inst,
						Names:         names,
						Embeddings:    kv.Emb,
						NonEmbeddings: kv.NonEmb,
					}
					m, err := h.EvalLEAPME(d, fc, frac)
					if err != nil {
						return nil, fmt.Errorf("eval: LEAPME%s on %s@%.0f%%: %w", kv.Suffix, d.Name, frac*100, err)
					}
					rows = append(rows, Row{
						Level: lvl, Dataset: d.Name, TrainFrac: frac,
						System: "LEAPME" + kv.Suffix, Metrics: m, Applicable: true,
					})
				}
				if cfg.SkipBaselines {
					continue
				}
				brows, err := h.baselineRows(d, lvl, frac, inst, names)
				if err != nil {
					return nil, err
				}
				rows = append(rows, brows...)
			}
		}
	}
	return rows, nil
}

// baselineRows evaluates the five baselines for one table cell-group.
// Name-based baselines (Nezhadi, AML, FCA-Map, SemProp) apply when the
// level includes names; instance-based LSH applies when it includes
// instances — matching the "-" cells of the paper's table.
func (h *Harness) baselineRows(d *dataset.Dataset, lvl string, frac float64, inst, names bool) ([]Row, error) {
	type b struct {
		name string
		mk   func() baselines.Matcher
		ok   bool
	}
	bs := []b{
		{"Nezhadi", func() baselines.Matcher { return baselines.NewNezhadi() }, names},
		{"AML", func() baselines.Matcher { return baselines.NewAML() }, names},
		{"FCA-Map", func() baselines.Matcher { return baselines.NewFCAMap() }, names},
		{"SemProp", func() baselines.Matcher { return baselines.NewSemProp(h.Store) }, names},
		{"LSH", func() baselines.Matcher { return baselines.NewLSH() }, inst},
	}
	var rows []Row
	for _, bb := range bs {
		row := Row{Level: lvl, Dataset: d.Name, TrainFrac: frac, System: bb.name}
		if bb.ok {
			m, err := h.EvalBaseline(d, bb.mk, frac)
			if err != nil {
				return nil, fmt.Errorf("eval: %s on %s@%.0f%%: %w", bb.name, d.Name, frac*100, err)
			}
			row.Metrics = m
			row.Applicable = true
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func levelFlags(level string) (instances, names bool, err error) {
	switch strings.ToLower(level) {
	case "instances":
		return true, false, nil
	case "names":
		return false, true, nil
	case "both":
		return true, true, nil
	default:
		return false, false, fmt.Errorf("eval: unknown feature level %q", level)
	}
}

// RenderTable2 formats rows in the layout of the paper's Table II: one
// line per (level, dataset, fraction), systems as column groups.
func RenderTable2(rows []Row) string {
	systems := systemOrder(rows)
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-10s %-12s %-6s", "Level", "Dataset", "Train")
	for _, s := range systems {
		fmt.Fprintf(&sb, " | %-20s", s)
	}
	sb.WriteByte('\n')
	fmt.Fprintf(&sb, "%-10s %-12s %-6s", "", "", "")
	for range systems {
		fmt.Fprintf(&sb, " | %-6s %-6s %-6s", "P", "R", "F1")
	}
	sb.WriteByte('\n')

	type key struct {
		level, ds string
		frac      float64
	}
	groups := map[key]map[string]Row{}
	var order []key
	for _, r := range rows {
		k := key{r.Level, r.Dataset, r.TrainFrac}
		if groups[k] == nil {
			groups[k] = map[string]Row{}
			order = append(order, k)
		}
		groups[k][r.System] = r
	}
	for _, k := range order {
		fmt.Fprintf(&sb, "%-10s %-12s %-6s", k.level, k.ds, fmt.Sprintf("%.0f%%", k.frac*100))
		for _, s := range systems {
			r, ok := groups[k][s]
			if !ok || !r.Applicable {
				fmt.Fprintf(&sb, " | %-6s %-6s %-6s", "-", "-", "-")
				continue
			}
			fmt.Fprintf(&sb, " | %-6.2f %-6.2f %-6.2f", r.Metrics.P, r.Metrics.R, r.Metrics.F1)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// systemOrder lists systems in the paper's column order, restricted to
// those present.
func systemOrder(rows []Row) []string {
	want := []string{"LEAPME", "LEAPME(emb)", "LEAPME(-emb)", "Nezhadi", "AML", "FCA-Map", "SemProp", "LSH"}
	present := map[string]bool{}
	for _, r := range rows {
		present[r.System] = true
	}
	var out []string
	for _, s := range want {
		if present[s] {
			out = append(out, s)
			delete(present, s)
		}
	}
	var rest []string
	for s := range present {
		rest = append(rest, s)
	}
	sort.Strings(rest)
	return append(out, rest...)
}
