package leapme

import (
	"context"
	"math/rand"
	"testing"
)

// TestPublicAPIEndToEnd exercises the documented quick-start flow through
// the public API only.
func TestPublicAPIEndToEnd(t *testing.T) {
	spec := DefaultEmbeddingSpec()
	spec.Categories = []string{"cameras"}
	spec.SentencesPerProp = 40
	spec.GloVe.Dim = 24
	spec.GloVe.Epochs = 12
	store, err := TrainDomainEmbeddings(spec)
	if err != nil {
		t.Fatal(err)
	}
	if store.Dim() != 24 {
		t.Fatalf("store dim = %d", store.Dim())
	}

	cfg := CamerasLite(1)
	cfg.NumSources = 5
	cfg.MinEntities, cfg.MaxEntities = 8, 12
	data, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}

	m, err := NewMatcher(store, DefaultOptions(1))
	if err != nil {
		t.Fatal(err)
	}
	m.ComputeFeatures(context.Background(), data)

	trainSrc := map[string]bool{"source00": true, "source01": true, "source02": true}
	testSrc := map[string]bool{"source03": true, "source04": true}
	pairs := TrainingPairs(data.PropsOfSources(trainSrc), 2, rand.New(rand.NewSource(1)))
	if len(pairs) == 0 {
		t.Fatal("no training pairs")
	}
	if _, err := m.Train(context.Background(), pairs); err != nil {
		t.Fatal(err)
	}
	matches, err := m.Matches(context.Background(), data.PropsOfSources(testSrc))
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) == 0 {
		t.Fatal("no matches found")
	}

	// Feed the similarity graph and cluster.
	g := NewSimilarityGraph()
	for _, sp := range matches {
		g.AddEdge(sp.A, sp.B, sp.Score)
	}
	clusters := g.ConnectedComponents()
	if len(clusters) == 0 {
		t.Fatal("no clusters")
	}
}

func TestPresetNames(t *testing.T) {
	cases := map[string]GenConfig{
		"cameras":         Cameras(1),
		"headphones":      Headphones(1),
		"phones":          Phones(1),
		"tvs":             TVs(1),
		"cameras-lite":    CamerasLite(1),
		"headphones-lite": HeadphonesLite(1),
		"phones-lite":     PhonesLite(1),
		"tvs-lite":        TVsLite(1),
	}
	for want, cfg := range cases {
		if cfg.Name != want {
			t.Errorf("preset name = %q, want %q", cfg.Name, want)
		}
	}
}

func TestBaselineConstructors(t *testing.T) {
	spec := DefaultEmbeddingSpec()
	spec.Categories = []string{"cameras"}
	spec.SentencesPerProp = 10
	spec.GloVe.Dim = 8
	spec.GloVe.Epochs = 2
	store, err := TrainDomainEmbeddings(spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range []BaselineMatcher{NewAML(), NewFCAMap(), NewNezhadi(), NewSemProp(store), NewLSH()} {
		if b.Name() == "" {
			t.Error("baseline with empty name")
		}
	}
}

func TestAllFeatureConfigs(t *testing.T) {
	if got := len(AllFeatureConfigs()); got != 9 {
		t.Errorf("feature configs = %d, want 9", got)
	}
	if !FullFeatures().Valid() {
		t.Error("FullFeatures invalid")
	}
	if len(PaperSchedule()) != 3 {
		t.Error("PaperSchedule should have 3 phases")
	}
}

func TestFromInstancesPublic(t *testing.T) {
	d, err := FromInstances("user", "misc", []Instance{
		{Source: "a", Entity: "e", Property: "p", Value: "v"},
		{Source: "b", Entity: "f", Property: "q", Value: "w"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Sources) != 2 {
		t.Errorf("sources = %d", len(d.Sources))
	}
}
